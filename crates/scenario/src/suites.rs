//! Named scenario suites: the registry behind `scenario list` / `scenario
//! run --suite <name>`.
//!
//! * **paper** — the e1–e8 experiment ports (see [`crate::ports`]).
//! * **stabilize** — the self-stabilization recovery frontier: scheduled
//!   corruption families swept over loss × intensity × n with
//!   stabilization-time probes (see [`crate::stabilize`]).
//! * **unsupportive** — the recurring-corruption frontier: the BFS
//!   spanning-tree workload under period × intensity burst trains, each
//!   episode's recovery checked against its certified topology bound
//!   (see [`crate::unsupportive`]).
//! * **examples** — ports of the repository's `examples/` walkthroughs.
//! * **smoke** — fast simulator-backed specs exercising every declarative
//!   axis: topology families, lossy delivery, adversaries, colluders,
//!   churn schedules (healable partitions included) and transient faults.
//!   Wired into `scripts/tier1.sh`.
//! * **bench64** — 64-processor workloads used by
//!   `scripts/bench_scenarios.sh` to track sweep throughput.

use std::sync::Arc;

use ga_simnet::prelude::*;
use ga_simnet::runtime::Runtime;
use ga_simnet::sim::Delivery;

use crate::authority;
use crate::ports;
use crate::record::{Scenario, Verdict};
use crate::spec::{PlacementStrategy, Role, ScenarioSpec, TopologyFamily};
use crate::stabilize;
use crate::sweep::{self, ParamGrid, SweepSummary};
use crate::unsupportive;
use crate::workload::{gossip_agreed, relay_fired, Flood, MaxGossip, Relay};

/// A named, described set of scenarios with a default seed plan.
#[derive(Clone)]
pub struct Suite {
    /// Registry name (`scenario run --suite <name>`).
    pub name: &'static str,
    /// One-line description for `scenario list`.
    pub description: &'static str,
    /// First seed of the default range.
    pub seed_base: u64,
    /// Default number of seeds per scenario.
    pub default_seeds: u64,
    build: fn() -> Vec<Arc<dyn Scenario>>,
}

impl Suite {
    /// Instantiates the suite's scenarios.
    pub fn scenarios(&self) -> Vec<Arc<dyn Scenario>> {
        (self.build)()
    }

    /// Runs the suite over `seeds` seeds (default plan if `None`) on
    /// `workers` threads.
    pub fn run(&self, seeds: Option<u64>, workers: usize) -> SweepSummary {
        self.run_sharded(seeds, workers, 0)
    }

    /// [`run`](Suite::run) with each run's `Simulation::step` sharded
    /// across `shards` threads (0 defers to each scenario's own default,
    /// 1 forces serial). Summaries are byte-identical at any
    /// `(workers, shards)` combination.
    pub fn run_sharded(&self, seeds: Option<u64>, workers: usize, shards: usize) -> SweepSummary {
        self.run_on(&Runtime::global(), seeds, workers, shards)
    }

    /// [`run_sharded`](Suite::run_sharded) drawing sweep workers *and*
    /// every run's shard tasks from `runtime` — the CLI builds one pool
    /// from `--workers` and passes it here, so the flag is a true global
    /// thread budget. The pool never changes a summary.
    pub fn run_on(
        &self,
        runtime: &Runtime,
        seeds: Option<u64>,
        workers: usize,
        shards: usize,
    ) -> SweepSummary {
        let count = seeds.unwrap_or(self.default_seeds).max(1);
        sweep::sweep_on(
            runtime,
            self.name,
            &self.scenarios(),
            self.seed_base..self.seed_base + count,
            workers,
            shards,
        )
    }

    /// [`run_sharded`](Suite::run_sharded) that streams every record to
    /// `sink` (in job order) instead of retaining them in the summary.
    pub fn run_stream(
        &self,
        seeds: Option<u64>,
        workers: usize,
        shards: usize,
        sink: sweep::RecordSink<'_>,
    ) -> SweepSummary {
        self.run_stream_on(&Runtime::global(), seeds, workers, shards, None, sink)
    }

    /// [`run_stream`](Suite::run_stream) on an explicit [`Runtime`] pool,
    /// optionally with the deterministic event plane on for every run
    /// (`telemetry` — see [`sweep::sweep_stream_on`]).
    pub fn run_stream_on(
        &self,
        runtime: &Runtime,
        seeds: Option<u64>,
        workers: usize,
        shards: usize,
        telemetry: Option<&TelemetryConfig>,
        sink: sweep::RecordSink<'_>,
    ) -> SweepSummary {
        let count = seeds.unwrap_or(self.default_seeds).max(1);
        sweep::sweep_stream_on(
            runtime,
            self.name,
            &self.scenarios(),
            self.seed_base..self.seed_base + count,
            workers,
            shards,
            telemetry,
            sink,
        )
    }
}

/// Every registered suite.
pub fn all() -> Vec<Suite> {
    vec![
        Suite {
            name: "paper",
            description: "e1-e8 experiment ports: every figure/theorem artifact as a verdict",
            seed_base: 2010,
            default_seeds: 2,
            build: paper,
        },
        Suite {
            name: "authority",
            description:
                "§3.3 distributed-authority plays: honest, selfish-cluster, mute, churn, noise",
            seed_base: 40,
            default_seeds: 2,
            build: authority::suite,
        },
        Suite {
            name: "stabilize",
            description:
                "recovery frontier: scheduled corruption × loss × n with stabilization-time probes",
            seed_base: 60,
            default_seeds: 2,
            build: stabilize::suite,
        },
        Suite {
            name: "unsupportive",
            description:
                "recurring-corruption frontier: BFS tree recovery per burst vs its certified bound",
            seed_base: 80,
            default_seeds: 2,
            build: unsupportive::suite,
        },
        Suite {
            name: "examples",
            description: "ports of the examples/ walkthroughs (quickstart, audit, consortium)",
            seed_base: 2010,
            default_seeds: 2,
            build: examples,
        },
        Suite {
            name: "smoke",
            description: "fast simulator specs covering every declarative axis (tier-1 gate)",
            seed_base: 0,
            default_seeds: 3,
            build: smoke,
        },
        Suite {
            name: "sparse",
            description:
                "large-n quiescent relay wavefronts: O(active) stepping on 4k/64k sparse graphs",
            seed_base: 100,
            default_seeds: 1,
            build: sparse,
        },
        Suite {
            name: "bench64",
            description: "64-processor sweep workloads for throughput tracking",
            seed_base: 0,
            default_seeds: 16,
            build: bench64,
        },
        Suite {
            name: "bench256",
            description: "256-processor workloads where intra-run sharding (--shards) pays off",
            seed_base: 0,
            default_seeds: 4,
            build: bench256,
        },
    ]
}

/// Looks a suite up by name.
pub fn find(name: &str) -> Option<Suite> {
    all().into_iter().find(|s| s.name == name)
}

fn paper() -> Vec<Arc<dyn Scenario>> {
    vec![
        ports::e1_fig1_port(),
        ports::e2_pom_port(),
        ports::e3_rra_port(),
        ports::e4_ssba_port(),
        ports::e5_virus_port(),
        ports::e6_overhead_port(),
        ports::e7_dynamics_port(),
        ports::e8_cadence_port(),
    ]
}

fn examples() -> Vec<Arc<dyn Scenario>> {
    vec![
        ports::quickstart_port(),
        ports::manipulation_audit_port(),
        ports::rra_consortium_port(),
    ]
}

fn gossip(id: ProcessId, _n: usize) -> Box<dyn Process> {
    Box::new(MaxGossip::new(id.index() as u64))
}

fn flood(_id: ProcessId, _n: usize) -> Box<dyn Process> {
    Box::new(Flood::default())
}

fn smoke() -> Vec<Arc<dyn Scenario>> {
    let mut scenarios: Vec<Arc<dyn Scenario>> = Vec::new();

    // Reliable flood on a complete graph: exact delivery accounting.
    scenarios.push(Arc::new(
        ScenarioSpec::new("smoke_flood_complete", TopologyFamily::Complete(8), flood)
            .max_rounds(20)
            .verdict(|_, r| {
                Verdict::check(
                    r.messages.delivered == 8 * 7 * 20 && r.messages.dropped_lossy == 0,
                    "complete reliable flood must deliver degree × rounds",
                )
            }),
    ));

    // Lossy ring, swept over the drop probability via a parameter grid:
    // the observed drop rate must track the configured one.
    scenarios.extend(sweep::expand_grid(
        "smoke_lossy_ring",
        &ParamGrid::new().axis("p", [0.1, 0.3]),
        |point| {
            let p = point[0].1;
            ScenarioSpec::new("smoke_lossy_ring", TopologyFamily::Ring(12), flood)
                .delivery(Delivery::Lossy { p })
                .max_rounds(40)
                .verdict(move |_, r| {
                    Verdict::check(
                        (r.messages.lossy_drop_rate - p).abs() < 0.15
                            && r.messages.dropped_lossy > 0,
                        "observed drop rate should track the configured p",
                    )
                })
        },
    ));

    // Star churn: the hub dies at round 3 and recovers at round 8; gossip
    // must still reach the fixpoint before the budget.
    scenarios.push(Arc::new(
        ScenarioSpec::new("smoke_star_hub_churn", TopologyFamily::Star(9), gossip)
            .schedule(
                Schedule::new()
                    .at(3, ScheduledAction::Disconnect(ProcessId(0)))
                    .at(
                        8,
                        ScheduledAction::Reconnect(ProcessId(0), (1..9).map(ProcessId).collect()),
                    ),
            )
            .max_rounds(24)
            .stop_when(|sim| {
                gossip_agreed(sim, 0..9)
                    && sim
                        .process_as::<MaxGossip>(ProcessId(0))
                        .map(|p| p.current == 8)
                        .unwrap_or(false)
            })
            .verdict(|_, r| {
                Verdict::check(
                    r.stopped_at.is_some(),
                    "gossip should reach the fixpoint after the hub recovers",
                )
            }),
    ));

    // Grid with a mid-run total transient fault: self-stabilization means
    // the gossipers re-agree afterwards, and the fault's channel wipe is
    // visible in the drop accounting.
    scenarios.push(Arc::new(
        ScenarioSpec::new(
            "smoke_grid_fault_recovery",
            TopologyFamily::Grid(4, 4),
            gossip,
        )
        .schedule(Schedule::new().at(6, ScheduledAction::Inject(TransientFault::total(16, 1))))
        .max_rounds(40)
        .verdict(|sim, r| {
            Verdict::check(
                gossip_agreed(sim, 0..16),
                "gossip must re-agree after the fault",
            )
            .and(Verdict::check(
                r.messages.dropped_fault > 0,
                "the fault's channel wipe should be accounted",
            ))
        }),
    ));

    // Colluders whose coordinated 9-byte lies never decode: honest
    // gossipers must ignore them and agree on the honest maximum.
    scenarios.push(Arc::new(
        ScenarioSpec::new("smoke_colluders", TopologyFamily::Complete(7), gossip)
            .colluders([5, 6])
            .max_rounds(10)
            .verdict(|sim, _| {
                let honest_max = sim.process_as::<MaxGossip>(ProcessId(0)).map(|p| p.current);
                Verdict::check(
                    gossip_agreed(sim, 0..5) && honest_max == Some(4),
                    "honest gossipers should agree on the honest maximum",
                )
            }),
    ));

    // Edge-level partition churn: a healable bisection splits the
    // complete graph into two silent halves at round 0 and rejoins them
    // at round 6. The lower half can only learn the global maximum (id 9,
    // in the upper half) after the heal, so convergence is provably
    // delayed past it.
    scenarios.push(Arc::new(
        ScenarioSpec::new("smoke_partition_heal", TopologyFamily::Complete(10), gossip)
            .schedule(Schedule::new().bisect(&Topology::complete(10), 0, 6))
            .max_rounds(30)
            .stop_when(|sim| {
                gossip_agreed(sim, 0..10)
                    && sim
                        .process_as::<MaxGossip>(ProcessId(0))
                        .map(|p| p.current == 9)
                        .unwrap_or(false)
            })
            .verdict(|_, r| {
                Verdict::check(
                    r.stopped_at.is_some_and(|round| round > 6),
                    "the halves must re-agree on the global max only after the heal",
                )
            }),
    ));

    // Worst-case-by-degree placement: the star's hub is the max-degree
    // vertex, so the strategy must silence it and cut every leaf off.
    scenarios.push(Arc::new(
        ScenarioSpec::new("smoke_worst_case_hub", TopologyFamily::Star(8), flood)
            .place(PlacementStrategy::WorstCaseByDegree {
                f: 1,
                role: Role::Silent,
            })
            .max_rounds(10)
            .probe(|sim, record| {
                let heard = sim
                    .process_as::<Flood>(ProcessId(1))
                    .map(|f| f.heard)
                    .unwrap_or(99);
                record.metric("leaf_heard", heard as f64);
            })
            .verdict(|_, r| {
                Verdict::check(
                    r.get_metric("leaf_heard") == Some(0.0),
                    "silencing the hub by degree must cut every leaf off",
                )
            }),
    ));

    // A well-formed equivocator: different lies to even/odd neighbors.
    // Max-gossip absorbs the disagreement — everyone converges to the
    // larger lie.
    scenarios.push(Arc::new(
        ScenarioSpec::new("smoke_equivocator", TopologyFamily::Complete(6), gossip)
            .adversary(
                5,
                Role::Equivocator {
                    a: MaxGossip::encode(100),
                    b: MaxGossip::encode(200),
                },
            )
            .max_rounds(10)
            .verdict(|sim, _| {
                let v = sim.process_as::<MaxGossip>(ProcessId(0)).map(|p| p.current);
                Verdict::check(
                    gossip_agreed(sim, 0..5) && v == Some(200),
                    "gossip should converge on the equivocator's larger lie",
                )
            }),
    ));

    scenarios
}

fn relay(id: ProcessId, _n: usize) -> Box<dyn Process> {
    Box::new(if id.index() == 0 {
        Relay::source()
    } else {
        Relay::default()
    })
}

/// Large-n sparse scenarios: the populations where O(n)-per-round
/// scanning stops being viable (a 64k ring would spend its whole round
/// budget stepping idle processes) and quiescence-aware stepping is what
/// keeps rounds proportional to the token wavefront.
fn sparse() -> Vec<Arc<dyn Scenario>> {
    vec![
        // 64×64 grid, run to full coverage: the far corner is the last
        // process the wavefront reaches (Manhattan eccentricity 126), so
        // its firing is an O(1) stop probe implying everyone fired.
        Arc::new(
            ScenarioSpec::new("sparse_relay_grid4096", TopologyFamily::Grid(64, 64), relay)
                .max_rounds(200)
                .stop_when(|sim| {
                    sim.process_as::<Relay>(ProcessId(4095))
                        .is_some_and(|p| p.fired)
                })
                .verdict(|sim, r| {
                    Verdict::check(
                        relay_fired(sim, 0..4096) == 4096,
                        "the wavefront must cover the whole grid",
                    )
                    .and(Verdict::check(
                        r.stopped_at == Some(127),
                        "coverage exactly at the corner's eccentricity + 1",
                    ))
                }),
        ),
        // 65536-ring smoke: far too wide to cross in a test budget, so run
        // a fixed 64 rounds and check the two wavefront arms advanced one
        // hop per round — 1 source + 2×63 relays fired.
        Arc::new(
            ScenarioSpec::new("sparse_relay_ring65536", TopologyFamily::Ring(65536), relay)
                .max_rounds(64)
                .verdict(|sim, _| {
                    Verdict::check(
                        relay_fired(sim, 0..65536) == 127,
                        "both wavefront arms must advance one hop per round",
                    )
                }),
        ),
    ]
}

fn bench64() -> Vec<Arc<dyn Scenario>> {
    vec![
        Arc::new(
            ScenarioSpec::new(
                "bench_flood_complete64",
                TopologyFamily::Complete(64),
                flood,
            )
            .max_rounds(30),
        ),
        Arc::new(
            ScenarioSpec::new(
                "bench_lossy_random64",
                TopologyFamily::RandomK {
                    n: 64,
                    k: 8,
                    extra_p: 0.05,
                },
                gossip,
            )
            .delivery(Delivery::Lossy { p: 0.1 })
            .max_rounds(30),
        ),
        Arc::new(
            ScenarioSpec::new("bench_star_churn64", TopologyFamily::Star(64), gossip)
                .schedule(
                    Schedule::new()
                        .at(5, ScheduledAction::Disconnect(ProcessId(0)))
                        .at(
                            15,
                            ScheduledAction::Reconnect(
                                ProcessId(0),
                                (1..64).map(ProcessId).collect(),
                            ),
                        ),
                )
                .max_rounds(30),
        ),
        Arc::new(
            ScenarioSpec::new("bench_grid_fault64", TopologyFamily::Grid(8, 8), gossip)
                .schedule(
                    Schedule::new().at(10, ScheduledAction::Inject(TransientFault::total(64, 2))),
                )
                .max_rounds(30),
        ),
    ]
}

/// 256-processor workloads: the population scale where one run stops
/// fitting one core and the `--shards` knob starts mattering. Mirrors the
/// bench64 shapes so the two suites read as one scaling series.
fn bench256() -> Vec<Arc<dyn Scenario>> {
    vec![
        Arc::new(
            ScenarioSpec::new(
                "bench_flood_complete256",
                TopologyFamily::Complete(256),
                flood,
            )
            .max_rounds(15),
        ),
        Arc::new(
            ScenarioSpec::new(
                "bench_lossy_random256",
                TopologyFamily::RandomK {
                    n: 256,
                    k: 8,
                    extra_p: 0.02,
                },
                gossip,
            )
            .delivery(Delivery::Lossy { p: 0.1 })
            .max_rounds(30),
        ),
        Arc::new(
            ScenarioSpec::new("bench_grid_fault256", TopologyFamily::Grid(16, 16), gossip)
                .schedule(
                    Schedule::new().at(10, ScheduledAction::Inject(TransientFault::total(256, 2))),
                )
                .max_rounds(30),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_finds_every_suite() {
        for suite in all() {
            assert!(find(suite.name).is_some());
            assert!(!suite.scenarios().is_empty());
        }
        assert!(find("nonsense").is_none());
    }

    #[test]
    fn paper_suite_has_all_eight_ports() {
        let names: Vec<String> = find("paper")
            .unwrap()
            .scenarios()
            .iter()
            .map(|s| s.name().to_string())
            .collect();
        assert_eq!(names.len(), 8);
        for e in 1..=8 {
            assert!(
                names.iter().any(|n| n.starts_with(&format!("e{e}_"))),
                "missing e{e} port in {names:?}"
            );
        }
    }

    #[test]
    fn smoke_suite_passes_at_default_plan() {
        let summary = find("smoke").unwrap().run(None, 4);
        assert!(
            summary.all_passed(),
            "smoke failures: {:?}",
            summary
                .records
                .iter()
                .filter(|r| !r.verdict.passed())
                .map(|r| (&r.scenario, r.seed, &r.verdict))
                .collect::<Vec<_>>()
        );
        assert_eq!(summary.runs(), 9 * 3, "9 scenarios × 3 seeds");
    }

    #[test]
    fn authority_suite_passes_at_one_seed() {
        let summary = find("authority").unwrap().run(Some(1), 4);
        assert_eq!(summary.runs(), 5, "5 play families");
        assert!(
            summary.all_passed(),
            "authority failures: {:?}",
            summary
                .records
                .iter()
                .filter(|r| !r.verdict.passed())
                .map(|r| (&r.scenario, r.seed, &r.verdict))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn stabilize_suite_is_registered_with_full_frontier() {
        let suite = find("stabilize").unwrap();
        assert_eq!(suite.seed_base, 60);
        let scenarios = suite.scenarios();
        assert_eq!(scenarios.len(), 27, "2 families × 12 points + 3 ports");
        // The benign edge of the frontier and every port must pass; the
        // harsh (lossy, high-intensity) points are allowed to censor —
        // that is the frontier the suite exists to chart.
        let summary = suite.run(Some(1), 4);
        assert_eq!(summary.runs(), 27);
        for r in &summary.records {
            if r.scenario.contains("[loss=0,") || r.scenario.starts_with("stabilize_port_") {
                assert!(
                    r.verdict.passed(),
                    "{} failed at seed {}: {:?}",
                    r.scenario,
                    r.seed,
                    r.verdict
                );
            }
        }
    }

    #[test]
    fn unsupportive_suite_charts_the_censoring_frontier() {
        let suite = find("unsupportive").unwrap();
        assert_eq!(suite.seed_base, 80);
        let summary = suite.run(Some(1), 4);
        assert_eq!(summary.runs(), 16, "2 families × 8 grid points");
        // Slow periods must pass their certified-bound verdicts; the
        // fast-period, full-intensity corner must censor — that censoring
        // boundary is the frontier the suite exists to chart.
        for r in &summary.records {
            if r.scenario.contains("[period=15,") {
                assert!(
                    r.verdict.passed(),
                    "{} failed at seed {}: {:?}",
                    r.scenario,
                    r.seed,
                    r.verdict
                );
            }
            if r.scenario.contains("[period=2,c=1]") {
                assert!(!r.verdict.passed(), "{} must censor", r.scenario);
            }
        }
    }

    #[test]
    fn sparse_suite_passes_at_default_plan() {
        let summary = find("sparse").unwrap().run(None, 2);
        assert_eq!(summary.runs(), 2, "2 scenarios × 1 seed");
        assert!(
            summary.all_passed(),
            "sparse failures: {:?}",
            summary
                .records
                .iter()
                .filter(|r| !r.verdict.passed())
                .map(|r| (&r.scenario, r.seed, &r.verdict))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn bench64_runs_one_seed() {
        let summary = find("bench64").unwrap().run(Some(1), 4);
        assert_eq!(summary.runs(), 4);
        assert!(summary.all_passed());
        assert!(summary.records[0].messages.delivered > 0);
    }

    #[test]
    fn bench256_sharded_summary_matches_serial() {
        let suite = find("bench256").unwrap();
        let serial = suite.run_sharded(Some(1), 2, 1).to_json(true).render();
        let sharded = suite.run_sharded(Some(1), 2, 4).to_json(true).render();
        assert_eq!(serial, sharded, "--shards must never change a summary");
    }
}

//! Property tests for the agreement substrate: protocol guarantees over
//! random inputs and adversaries, codec totality.

use ga_agreement::consensus::majority;
use ga_agreement::executor::{honest_agreement, no_tamper, run_pure};
use ga_agreement::king::PhaseKing;
use ga_agreement::om::OmBroadcast;
use ga_agreement::wire::{Reader, Writer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Wire decoding is total: arbitrary bytes never panic.
    #[test]
    fn reader_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut r = Reader::new(&bytes);
        let _ = r.get_u8();
        let _ = r.get_u16();
        let _ = r.get_u32();
        let _ = r.get_u64();
        let _ = r.get_bytes();
        // And protocols must tolerate garbage inboxes outright:
        let instances: Vec<OmBroadcast> = (0..4).map(|me| OmBroadcast::new(me, 4, 1, 0)).collect();
        let decided = run_pure(instances, &[5, 0, 0, 0],
            move |from: usize, _r: u64, _to: usize, _p: &[u8]| {
                (from == 3).then(|| bytes.clone())
            });
        prop_assert!(honest_agreement(&decided, &[3], Some(5)));
    }

    /// Writer/Reader round-trips arbitrary scalar sequences.
    #[test]
    fn codec_round_trip(a in any::<u8>(), b in any::<u16>(), c in any::<u64>(),
                        payload in proptest::collection::vec(any::<u8>(), 0..100)) {
        let mut w = Writer::new();
        w.put_u8(a).put_u16(b).put_u64(c).put_bytes(&payload);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.get_u8(), Some(a));
        prop_assert_eq!(r.get_u16(), Some(b));
        prop_assert_eq!(r.get_u64(), Some(c));
        prop_assert_eq!(r.get_bytes(), Some(payload.as_slice()));
        prop_assert!(r.is_exhausted());
    }

    /// OM broadcast validity: with an honest source, all honest processors
    /// decide the source value, whatever the inputs elsewhere.
    #[test]
    fn om_validity(n in 4usize..8, source_value in any::<u64>(), source in 0usize..8) {
        let source = source % n;
        let instances: Vec<OmBroadcast> =
            (0..n).map(|me| OmBroadcast::new(me, n, 1, source)).collect();
        let inputs: Vec<u64> = (0..n)
            .map(|i| if i == source { source_value } else { i as u64 })
            .collect();
        let decided = run_pure(instances, &inputs, no_tamper);
        prop_assert!(decided.iter().all(|d| *d == Some(source_value)));
    }

    /// Phase-king validity: unanimous honest inputs always survive a
    /// crash-faulty processor.
    #[test]
    fn phase_king_validity(n in 5usize..10, v in any::<u64>(), byz in 0usize..10) {
        let byz = byz % n;
        let instances: Vec<PhaseKing> = (0..n).map(|me| PhaseKing::new(me, n, 1)).collect();
        let inputs = vec![v; n];
        let decided = run_pure(instances, &inputs,
            move |from: usize, _r: u64, _t: usize, _p: &[u8]| (from == byz).then(Vec::new));
        prop_assert!(honest_agreement(&decided, &[byz], Some(v)));
    }

    /// Strict majority helper: a value with > n/2 occurrences always wins;
    /// without one the default is returned.
    #[test]
    fn majority_properties(values in proptest::collection::vec(0u64..4, 1..12)) {
        let n = values.len();
        let m = majority(values.iter().copied(), n);
        let count = values.iter().filter(|&&v| v == m).count();
        if m != ga_agreement::DEFAULT_VALUE {
            prop_assert!(2 * count > n);
        } else {
            // Either 0 genuinely won a majority, or nothing did.
            let zero_count = values.iter().filter(|&&v| v == 0).count();
            let any_majority = (0u64..4).any(|v| {
                2 * values.iter().filter(|&&x| x == v).count() > n
            });
            prop_assert!(2 * zero_count > n || !any_majority);
        }
    }
}

//! High-level harness: run any consensus backend over the simulator with a
//! chosen Byzantine population.
//!
//! Used by integration tests, the experiment runner (E6: authority
//! overhead per backend) and the docs. For fine-grained adversaries use
//! [`executor`](crate::executor) (message substitution) or build the
//! simulation manually.

use ga_crypto::mac::KeyRing;
use ga_simnet::adversary::{ByzantineProcess, RandomNoise, Silent};
use ga_simnet::prelude::*;

use crate::consensus::{DolevStrongConsensus, OmConsensus};
use crate::king::PhaseKing;
use crate::traits::{BaInstance, BaProcess};
use crate::Value;

/// Which agreement protocol to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Oral messages over EIG: `n > 3f`, exponential messages.
    Om,
    /// Phase-king: `n > 4f`, polynomial messages, `O(f)` rounds.
    PhaseKing,
    /// Authenticated (Dolev–Strong chains): honest majority.
    DolevStrong,
}

impl Backend {
    /// All backends, for sweeps.
    pub const ALL: [Backend; 3] = [Backend::Om, Backend::PhaseKing, Backend::DolevStrong];

    /// Short name for report rows.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Om => "om",
            Backend::PhaseKing => "phase-king",
            Backend::DolevStrong => "dolev-strong",
        }
    }

    /// Builds a consensus instance of this backend for processor `me`.
    ///
    /// # Panics
    ///
    /// Panics when `(n, f)` violates the backend's threshold.
    pub fn instance(self, me: usize, n: usize, f: usize, ring: &KeyRing) -> Box<dyn BaInstance> {
        match self {
            Backend::Om => Box::new(OmConsensus::new(me, n, f)),
            Backend::PhaseKing => Box::new(PhaseKing::new(me, n, f)),
            Backend::DolevStrong => {
                Box::new(DolevStrongConsensus::new(me, n, f, ring.authenticator(me)))
            }
        }
    }

    /// The backend's resilience bound as a maximum `f` for a given `n`.
    pub fn max_faults(self, n: usize) -> usize {
        match self {
            Backend::Om => (n - 1) / 3,
            Backend::PhaseKing => (n - 1) / 4,
            Backend::DolevStrong => (n - 1) / 2,
        }
    }
}

/// How the harness's Byzantine processors behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Misbehavior {
    /// Send nothing at all.
    Crash,
    /// Send random bytes to everyone.
    Noise,
}

/// Outcome of a harnessed consensus run.
#[derive(Debug, Clone)]
pub struct ConsensusReport {
    /// Per-processor decisions (Byzantine slots are `None`).
    pub decisions: Vec<Option<Value>>,
    /// The Byzantine ids used.
    pub byzantine: Vec<usize>,
    /// Rounds executed.
    pub rounds: u64,
    /// Messages delivered in total.
    pub messages: u64,
    /// Payload bytes delivered in total.
    pub bytes: u64,
}

impl ConsensusReport {
    /// Whether every honest processor decided, and all alike.
    pub fn agreement(&self) -> bool {
        let honest: Vec<Value> = self
            .decisions
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.byzantine.contains(i))
            .filter_map(|(_, d)| *d)
            .collect();
        honest.len() == self.decisions.len() - self.byzantine.len()
            && honest.windows(2).all(|w| w[0] == w[1])
    }

    /// The common honest decision, if [`agreement`](Self::agreement) holds.
    pub fn decision(&self) -> Option<Value> {
        if !self.agreement() {
            return None;
        }
        self.decisions
            .iter()
            .enumerate()
            .find(|(i, _)| !self.byzantine.contains(i))
            .and_then(|(_, d)| *d)
    }
}

/// Runs `backend` consensus over a complete graph of `n` processors of
/// which `byzantine` send [`Misbehavior::Noise`]; processor `i`'s input is
/// `input_of(i)`.
///
/// # Panics
///
/// Panics when `(n, f)` violates the backend threshold or a Byzantine id is
/// out of range.
pub fn run_consensus(
    backend: Backend,
    n: usize,
    f: usize,
    byzantine: &[usize],
    input_of: impl Fn(usize) -> Value,
    seed: u64,
) -> ConsensusReport {
    run_consensus_with(backend, n, f, byzantine, Misbehavior::Noise, input_of, seed)
}

/// [`run_consensus`] with an explicit misbehavior for the Byzantine set.
pub fn run_consensus_with(
    backend: Backend,
    n: usize,
    f: usize,
    byzantine: &[usize],
    misbehavior: Misbehavior,
    input_of: impl Fn(usize) -> Value,
    seed: u64,
) -> ConsensusReport {
    assert!(byzantine.len() <= f, "more Byzantine processors than f");
    assert!(
        byzantine.iter().all(|&b| b < n),
        "byzantine id out of range"
    );
    let ring = KeyRing::generate(n, seed ^ 0x5ec5_ec5e);
    let mut sim = Simulation::builder(Topology::complete(n))
        .seed(seed)
        .build_with(|id| {
            let i = id.index();
            if byzantine.contains(&i) {
                match misbehavior {
                    Misbehavior::Crash => {
                        Box::new(ByzantineProcess::new(Box::new(Silent))) as Box<dyn Process>
                    }
                    Misbehavior::Noise => {
                        Box::new(ByzantineProcess::new(Box::new(RandomNoise { max_len: 48 })))
                    }
                }
            } else {
                Box::new(BaProcess::new(
                    backend.instance(i, n, f, &ring),
                    input_of(i),
                ))
            }
        });

    // One pulse per protocol round.
    let rounds = {
        let probe = backend.instance(0, n, f, &ring);
        probe.rounds()
    };
    sim.run(rounds);

    let decisions = (0..n)
        .map(|i| {
            sim.process_as::<BaProcess>(ProcessId(i))
                .and_then(BaProcess::decided)
        })
        .collect();
    ConsensusReport {
        decisions,
        byzantine: byzantine.to_vec(),
        rounds: sim.trace().rounds,
        messages: sim.trace().messages_delivered,
        bytes: sim.trace().bytes_delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn om_backend_agrees_with_noise_byzantine() {
        let report = run_consensus(Backend::Om, 4, 1, &[3], |i| (i as u64) % 2, 1);
        assert!(report.agreement(), "{:?}", report.decisions);
    }

    #[test]
    fn phase_king_backend_agrees() {
        let report = run_consensus(Backend::PhaseKing, 5, 1, &[4], |_| 6, 2);
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(6), "validity");
    }

    #[test]
    fn dolev_strong_backend_agrees_with_two_faults_of_five() {
        let report = run_consensus(Backend::DolevStrong, 5, 2, &[3, 4], |_| 9, 3);
        assert!(report.agreement());
        assert_eq!(report.decision(), Some(9));
    }

    #[test]
    fn crash_misbehavior_also_tolerated() {
        for backend in Backend::ALL {
            let n = 9;
            let f = backend.max_faults(n).min(2);
            let byz: Vec<usize> = (n - f..n).collect();
            let report = run_consensus_with(backend, n, f, &byz, Misbehavior::Crash, |_| 5, 4);
            assert!(report.agreement(), "{backend:?}");
            assert_eq!(report.decision(), Some(5), "{backend:?} validity");
        }
    }

    #[test]
    fn report_counts_traffic() {
        let report = run_consensus(Backend::Om, 4, 1, &[], |_| 1, 5);
        assert!(report.messages > 0);
        assert!(report.bytes > 0);
        assert_eq!(report.rounds, 3);
    }

    #[test]
    fn max_faults_thresholds() {
        assert_eq!(Backend::Om.max_faults(7), 2);
        assert_eq!(Backend::PhaseKing.max_faults(9), 2);
        assert_eq!(Backend::DolevStrong.max_faults(7), 3);
    }

    #[test]
    #[should_panic(expected = "more Byzantine")]
    fn too_many_byzantine_rejected() {
        run_consensus(Backend::Om, 4, 1, &[2, 3], |_| 0, 0);
    }
}

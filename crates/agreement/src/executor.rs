//! Pure synchronous executor for [`BaInstance`]s.
//!
//! Runs a protocol without the full `ga-simnet` machinery: useful for fast
//! property tests and Criterion benches, and for exercising protocols under
//! a programmable message-substitution adversary (the strongest adversary:
//! it rewrites any Byzantine processor's outgoing traffic per-destination).
//!
//! For system-level runs (mixed protocols, faults mid-run, punishment by
//! disconnection) use [`harness`](crate::harness) / `ga-simnet` instead.

use bytes::Bytes;

use crate::traits::BaInstance;
use crate::Value;

/// A message-substitution adversary: `(from, round, to, honest_payload)` →
/// `Some(replacement)` to tamper, `None` to pass through.
pub trait Tamper {
    /// Decides what processor `from` actually sends to `to` at `round`.
    fn tamper(&mut self, from: usize, round: u64, to: usize, payload: &[u8]) -> Option<Vec<u8>>;
}

impl<F: FnMut(usize, u64, usize, &[u8]) -> Option<Vec<u8>>> Tamper for F {
    fn tamper(&mut self, from: usize, round: u64, to: usize, payload: &[u8]) -> Option<Vec<u8>> {
        self(from, round, to, payload)
    }
}

/// The identity adversary.
pub fn no_tamper(_: usize, _: u64, _: usize, _: &[u8]) -> Option<Vec<u8>> {
    None
}

/// Message/round statistics of a pure run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total messages exchanged.
    pub messages: u64,
    /// Total payload bytes exchanged.
    pub bytes: u64,
    /// Rounds executed.
    pub rounds: u64,
}

/// Runs the instances to completion over a full mesh and returns their
/// decisions.
pub fn run_pure<I: BaInstance>(
    instances: Vec<I>,
    inputs: &[Value],
    tamper: impl Tamper,
) -> Vec<Option<Value>> {
    run_pure_with_stats(instances, inputs, tamper).0
}

/// Like [`run_pure`], also reporting traffic statistics.
pub fn run_pure_with_stats<I: BaInstance>(
    instances: Vec<I>,
    inputs: &[Value],
    tamper: impl Tamper,
) -> (Vec<Option<Value>>, ExecStats) {
    let (instances, stats) = run_pure_instances(instances, inputs, tamper);
    (instances.iter().map(|i| i.decided()).collect(), stats)
}

/// Like [`run_pure`], but hands back the instances themselves so callers
/// can inspect protocol-specific state (e.g. the interactive-consistency
/// vector of a [`VectorConsensus`](crate::consensus::VectorConsensus)).
///
/// # Panics
///
/// Panics if `inputs.len() != instances.len()` or instances disagree on the
/// round count.
pub fn run_pure_instances<I: BaInstance>(
    mut instances: Vec<I>,
    inputs: &[Value],
    mut tamper: impl Tamper,
) -> (Vec<I>, ExecStats) {
    let n = instances.len();
    assert_eq!(inputs.len(), n, "one input per instance");
    for (i, inst) in instances.iter_mut().enumerate() {
        inst.begin(inputs[i]);
    }
    let rounds = instances[0].rounds();
    assert!(
        instances.iter().all(|i| i.rounds() == rounds),
        "instances must agree on round count"
    );
    let mut stats = ExecStats::default();
    // Double-buffered mailboxes, recycled (swap + clear) across rounds —
    // mirrors the allocation-free steady state of `Simulation::step`.
    let mut pending: Vec<Vec<(usize, Bytes)>> = vec![Vec::new(); n];
    let mut consumed: Vec<Vec<(usize, Bytes)>> = vec![Vec::new(); n];
    let mut outgoing: Vec<(usize, Bytes)> = Vec::new();
    for round in 0..rounds {
        std::mem::swap(&mut pending, &mut consumed);
        for mailbox in &mut pending {
            mailbox.clear();
        }
        for (i, inst) in instances.iter_mut().enumerate() {
            let inbox: Vec<(usize, &[u8])> = consumed[i]
                .iter()
                .map(|(s, p)| (*s, p.as_slice()))
                .collect();
            {
                let mut send = |to: usize, payload: Bytes| outgoing.push((to, payload));
                inst.step(round, &inbox, &mut send);
            }
            drop(inbox);
            for (to, payload) in outgoing.drain(..) {
                if to >= n {
                    continue;
                }
                let payload = match tamper.tamper(i, round, to, &payload) {
                    Some(replacement) => replacement.into(),
                    None => payload,
                };
                stats.messages += 1;
                stats.bytes += payload.len() as u64;
                pending[to].push((i, payload));
            }
        }
        stats.rounds += 1;
    }
    (instances, stats)
}

/// Convenience check: all honest (non-listed) processors decided, agree,
/// and — when `expect` is given — decided that value.
pub fn honest_agreement(
    decisions: &[Option<Value>],
    byzantine: &[usize],
    expect: Option<Value>,
) -> bool {
    let honest: Vec<Value> = decisions
        .iter()
        .enumerate()
        .filter(|(i, _)| !byzantine.contains(i))
        .filter_map(|(_, d)| *d)
        .collect();
    let honest_count = decisions.len() - byzantine.len();
    if honest.len() != honest_count {
        return false; // someone failed to decide
    }
    let agree = honest.windows(2).all(|w| w[0] == w[1]);
    match expect {
        Some(v) => agree && honest.first() == Some(&v),
        None => agree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::om::OmBroadcast;

    #[test]
    fn stats_count_traffic() {
        let n = 4;
        let instances: Vec<OmBroadcast> = (0..n).map(|me| OmBroadcast::new(me, n, 1, 0)).collect();
        let (decided, stats) = run_pure_with_stats(instances, &[5, 0, 0, 0], no_tamper);
        assert!(decided.iter().all(|d| *d == Some(5)));
        assert_eq!(stats.rounds, 3);
        assert!(stats.messages > 0);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn honest_agreement_helper() {
        assert!(honest_agreement(&[Some(1), Some(1), None], &[2], Some(1)));
        assert!(!honest_agreement(&[Some(1), Some(2), None], &[2], None));
        assert!(!honest_agreement(&[Some(1), None, None], &[2], None));
        assert!(honest_agreement(&[Some(3), Some(3), Some(3)], &[], None));
        assert!(!honest_agreement(&[Some(3), Some(3)], &[], Some(4)));
    }
}

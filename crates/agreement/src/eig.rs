//! Exponential information gathering (EIG) tree.
//!
//! The data structure behind the oral-messages algorithm: node `α` (a
//! sequence of distinct processor ids starting with the source) stores "the
//! value that the last processor of `α` claimed, relayed along `α`". After
//! `f+1` rounds the tree is resolved bottom-up by recursive majority.

use std::collections::HashMap;

use crate::{Value, DEFAULT_VALUE};

/// A path label: processor ids, first is the broadcast source.
pub type Path = Vec<u16>;

/// The EIG tree of one broadcast instance at one processor.
#[derive(Debug, Clone, Default)]
pub struct EigTree {
    nodes: HashMap<Path, Value>,
}

impl EigTree {
    /// An empty tree.
    pub fn new() -> EigTree {
        EigTree::default()
    }

    /// Stores `value` at node `path` (first write wins; Byzantine senders
    /// cannot overwrite an already-relayed value).
    pub fn store(&mut self, path: Path, value: Value) {
        self.nodes.entry(path).or_insert(value);
    }

    /// The stored value at `path`, if any.
    pub fn get(&self, path: &[u16]) -> Option<Value> {
        self.nodes.get(path).copied()
    }

    /// Number of populated nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no node is populated.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All populated nodes at `level` (path length).
    pub fn level(&self, level: usize) -> impl Iterator<Item = (&Path, Value)> {
        self.nodes
            .iter()
            .filter(move |(p, _)| p.len() == level)
            .map(|(p, &v)| (p, v))
    }

    /// Clears the tree for reuse.
    pub fn reset(&mut self) {
        self.nodes.clear();
    }

    /// Resolves the tree: the decision of the broadcast.
    ///
    /// `resolve(α)` is the stored value at leaves (level `f+1`), else the
    /// strict majority of `resolve(α·q)` over all `q ∉ α`; missing values
    /// and tied majorities resolve to [`DEFAULT_VALUE`].
    pub fn resolve(&self, source: u16, n: usize, f: usize) -> Value {
        self.resolve_node(&[source], n, f)
    }

    fn resolve_node(&self, path: &[u16], n: usize, f: usize) -> Value {
        if path.len() == f + 1 {
            return self.get(path).unwrap_or(DEFAULT_VALUE);
        }
        let mut counts: HashMap<Value, usize> = HashMap::new();
        let mut children = 0usize;
        for q in 0..n as u16 {
            if path.contains(&q) {
                continue;
            }
            children += 1;
            let mut child = path.to_vec();
            child.push(q);
            let v = self.resolve_node(&child, n, f);
            *counts.entry(v).or_insert(0) += 1;
        }
        if children == 0 {
            return self.get(path).unwrap_or(DEFAULT_VALUE);
        }
        // Strict majority; ties/dispersion fall to the default.
        counts
            .into_iter()
            .find(|&(_, c)| 2 * c > children)
            .map(|(v, _)| v)
            .unwrap_or(DEFAULT_VALUE)
    }
}

/// Validates a relayed path: length, distinct ids, declared source, actual
/// sender as last element, ids in range.
pub fn valid_path(path: &[u16], expect_len: usize, source: u16, sender: usize, n: usize) -> bool {
    if path.len() != expect_len || path.is_empty() {
        return false;
    }
    if path[0] != source {
        return false;
    }
    if *path.last().expect("nonempty") != sender as u16 {
        return false;
    }
    if path.iter().any(|&p| p as usize >= n) {
        return false;
    }
    let mut seen = std::collections::HashSet::new();
    path.iter().all(|p| seen.insert(*p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_first_write_wins() {
        let mut t = EigTree::new();
        t.store(vec![0], 5);
        t.store(vec![0], 9);
        assert_eq!(t.get(&[0]), Some(5));
    }

    #[test]
    fn resolve_unanimous_tree() {
        // n=4, f=1, source 0: level-1 node [0]=7, level-2 children all 7.
        let mut t = EigTree::new();
        t.store(vec![0], 7);
        for q in 1..4u16 {
            t.store(vec![0, q], 7);
        }
        assert_eq!(t.resolve(0, 4, 1), 7);
    }

    #[test]
    fn resolve_majority_over_one_liar() {
        // Child [0,3] lies (says 9); majority of {7, 7, 9} is 7.
        let mut t = EigTree::new();
        t.store(vec![0], 7);
        t.store(vec![0, 1], 7);
        t.store(vec![0, 2], 7);
        t.store(vec![0, 3], 9);
        assert_eq!(t.resolve(0, 4, 1), 7);
    }

    #[test]
    fn resolve_missing_everything_defaults() {
        let t = EigTree::new();
        assert_eq!(t.resolve(0, 4, 1), DEFAULT_VALUE);
    }

    #[test]
    fn resolve_no_majority_defaults() {
        // n=5, f=1: children of [0] are [0,1..4]; two say 3, two say 4 — no
        // strict majority among 4 children.
        let mut t = EigTree::new();
        t.store(vec![0], 3);
        t.store(vec![0, 1], 3);
        t.store(vec![0, 2], 3);
        t.store(vec![0, 3], 4);
        t.store(vec![0, 4], 4);
        assert_eq!(t.resolve(0, 5, 1), DEFAULT_VALUE);
    }

    #[test]
    fn level_iterates_only_that_depth() {
        let mut t = EigTree::new();
        t.store(vec![0], 1);
        t.store(vec![0, 1], 2);
        t.store(vec![0, 2], 3);
        assert_eq!(t.level(1).count(), 1);
        assert_eq!(t.level(2).count(), 2);
        assert_eq!(t.level(3).count(), 0);
    }

    #[test]
    fn valid_path_checks_everything() {
        assert!(valid_path(&[0, 2], 2, 0, 2, 4));
        assert!(!valid_path(&[0, 2], 3, 0, 2, 4), "wrong length");
        assert!(!valid_path(&[1, 2], 2, 0, 2, 4), "wrong source");
        assert!(!valid_path(&[0, 2], 2, 0, 3, 4), "sender mismatch");
        assert!(!valid_path(&[0, 0], 2, 0, 0, 4), "duplicate ids");
        assert!(!valid_path(&[0, 9], 2, 0, 9, 4), "id out of range");
        assert!(!valid_path(&[], 0, 0, 0, 4), "empty path");
    }

    #[test]
    fn reset_clears() {
        let mut t = EigTree::new();
        t.store(vec![0], 7);
        t.reset();
        assert!(t.is_empty());
    }
}

//! # ga-agreement — Byzantine agreement protocols
//!
//! The game authority's judicial service runs "a sequence of several
//! activations of the Byzantine agreement protocol" every play (§3.3):
//! agree on the previous outcome, agree on the commitment set, agree on the
//! foul set. This crate supplies the protocols:
//!
//! * [`om`] — the Lamport–Shostak–Pease **oral messages** algorithm over an
//!   exponential-information-gathering ([`eig`]) tree: `f+1` communication
//!   rounds, tolerates `f < n/3`, message complexity `O(n^f)` (the paper's
//!   reference \[19\]).
//! * [`king`] — the Berman–Garay–Perry **phase-king** consensus: `O(f)`
//!   rounds and polynomial messages, tolerating `f < n/4` in the simple
//!   2-round-per-phase variant implemented here (the paper's reference
//!   \[16\] is the fully polynomial family this stands in for).
//! * [`dolev_strong`] — **authenticated** broadcast with signature chains,
//!   tolerating any number of faults for broadcast and an honest majority
//!   for consensus — covering the paper's footnote 2: "authentication
//!   utilizes a Byzantine agreement that needs only a majority".
//! * [`consensus`] — interactive consistency (vector agreement) built from
//!   `n` parallel broadcasts, plus multivalued consensus by majority vote
//!   over the agreed vector.
//!
//! All protocols implement the restartable [`BaInstance`](traits::BaInstance)
//! state machine, so the self-stabilizing composition in `ga-clocksync`
//! (the paper's Theorem 1) can re-invoke them on every clock wrap, and the
//! [`BaProcess`](traits::BaProcess) adapter runs any of them as a
//! `ga-simnet` process.
//!
//! ## Quickstart
//!
//! ```
//! use ga_agreement::harness::{run_consensus, Backend};
//!
//! // 7 processors, 2 silently-crashed Byzantine ones, OM(f) backend.
//! let report = run_consensus(Backend::Om, 7, 2, &[5, 6], |i| i as u64 % 2, 42);
//! assert!(report.agreement(), "honest processors all decided alike");
//! ```

pub mod consensus;
pub mod dolev_strong;
pub mod eig;
pub mod executor;
pub mod harness;
pub mod king;
pub mod om;
pub mod traits;
pub mod wire;

/// The value domain all protocols agree on.
///
/// Larger objects (commitment sets, outcome vectors) are agreed upon by
/// first hashing them — the authority agrees on digests and transfers bodies
/// separately.
pub type Value = u64;

/// The fallback decision when no value gathers enough support.
pub const DEFAULT_VALUE: Value = 0;

//! Phase-king consensus (Berman–Garay–Perry style).
//!
//! Polynomial-message consensus in `O(f)` rounds: `f+1` phases of two
//! rounds each. Phase `p` (king = processor `p`):
//!
//! 1. everyone broadcasts its current value; each processor computes the
//!    most frequent value `maj` and its multiplicity `mult`;
//! 2. the king broadcasts its `maj`; a processor keeps `maj` if
//!    `mult > n/2 + f`, otherwise adopts the king's value.
//!
//! With `n > 4f` this satisfies validity, agreement and termination: some
//! phase has an honest king, after which all honest processors share a value
//! whose multiplicity can never drop below the `n/2 + f` keep-threshold.
//! (The exponential-message [`om`](crate::om) tolerates the optimal
//! `f < n/3`; phase-king trades a stronger threshold for polynomial
//! messages — the trade-off the paper's scalability discussion anticipates.)

use std::collections::HashMap;

use crate::traits::{broadcast_others, BaInstance, Send};
use crate::wire::{Reader, Writer};
use crate::{Value, DEFAULT_VALUE};

const TAG_VALUE: u8 = 1;
const TAG_KING: u8 = 2;

/// One phase-king consensus instance at one processor.
#[derive(Debug, Clone)]
pub struct PhaseKing {
    me: usize,
    n: usize,
    f: usize,
    value: Value,
    /// Latest round-1 tally: (majority value, its multiplicity).
    maj: Value,
    mult: usize,
    decided: Option<Value>,
}

impl PhaseKing {
    /// Creates the instance for processor `me` of `n`, tolerating `f`
    /// faults.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 4f` and `me < n`.
    pub fn new(me: usize, n: usize, f: usize) -> PhaseKing {
        assert!(n > 4 * f, "phase king requires n > 4f");
        assert!(me < n, "id in range");
        PhaseKing {
            me,
            n,
            f,
            value: DEFAULT_VALUE,
            maj: DEFAULT_VALUE,
            mult: 0,
            decided: None,
        }
    }

    fn encode(tag: u8, value: Value) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(tag);
        w.put_u64(value);
        w.finish()
    }

    fn decode(payload: &[u8]) -> Option<(u8, Value)> {
        let mut r = Reader::new(payload);
        let tag = r.get_u8()?;
        let value = r.get_u64()?;
        r.is_exhausted().then_some((tag, value))
    }

    /// Tally round-1 VALUE messages (own value included).
    fn tally(&mut self, inbox: &[(usize, &[u8])]) {
        let mut counts: HashMap<Value, usize> = HashMap::new();
        *counts.entry(self.value).or_insert(0) += 1;
        let mut seen: Vec<bool> = vec![false; self.n];
        seen[self.me] = true;
        for &(sender, payload) in inbox {
            if sender >= self.n || seen[sender] {
                continue; // one vote per processor
            }
            if let Some((TAG_VALUE, v)) = Self::decode(payload) {
                seen[sender] = true;
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        let (maj, mult) = counts
            .into_iter()
            .max_by_key(|&(v, c)| (c, std::cmp::Reverse(v)))
            .expect("own vote always present");
        self.maj = maj;
        self.mult = mult;
    }

    /// Round-2 update from the king's message.
    fn adopt(&mut self, king: usize, inbox: &[(usize, &[u8])]) {
        let king_value = inbox
            .iter()
            .filter(|&&(sender, _)| sender == king)
            .find_map(|&(_, payload)| match Self::decode(payload) {
                Some((TAG_KING, v)) => Some(v),
                _ => None,
            })
            .unwrap_or(DEFAULT_VALUE);
        // Keep own majority when it is unassailable, or when we are the
        // king (the king trusts its own broadcast); otherwise adopt.
        self.value = if self.mult > self.n / 2 + self.f || king == self.me {
            self.maj
        } else {
            king_value
        };
    }
}

impl BaInstance for PhaseKing {
    fn begin(&mut self, input: Value) {
        self.value = input;
        self.maj = DEFAULT_VALUE;
        self.mult = 0;
        self.decided = None;
    }

    fn step(&mut self, rel_round: u64, inbox: &[(usize, &[u8])], send: &mut Send<'_>) {
        let phases = self.f as u64 + 1;
        // Schedule: step 2p broadcasts VALUE; step 2p+1 tallies and the
        // phase's king broadcasts KING; step 2p+2 adopts (and broadcasts
        // the next phase's VALUE). Final step: 2*phases, adopt + decide.
        if rel_round > 2 * phases {
            return;
        }
        if rel_round == 0 {
            broadcast_others(self.n, self.me, Self::encode(TAG_VALUE, self.value), send);
            return;
        }
        if rel_round % 2 == 1 {
            // Tally VALUEs of phase p = (rel_round-1)/2; king announces.
            let phase = ((rel_round - 1) / 2) as usize;
            self.tally(inbox);
            if self.me == phase % self.n {
                broadcast_others(self.n, self.me, Self::encode(TAG_KING, self.maj), send);
            }
        } else {
            // Adopt phase (rel_round/2 - 1)'s outcome.
            let phase = (rel_round / 2 - 1) as usize;
            self.adopt(phase % self.n, inbox);
            if rel_round == 2 * phases {
                self.decided = Some(self.value);
            } else {
                broadcast_others(self.n, self.me, Self::encode(TAG_VALUE, self.value), send);
            }
        }
    }

    fn rounds(&self) -> u64 {
        2 * (self.f as u64 + 1) + 1
    }

    fn decided(&self) -> Option<Value> {
        self.decided
    }

    fn name(&self) -> &'static str {
        "phase-king"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{no_tamper as honest, run_pure};

    #[test]
    fn all_honest_unanimous_input_decides_it() {
        let n = 5;
        let instances: Vec<PhaseKing> = (0..n).map(|me| PhaseKing::new(me, n, 1)).collect();
        let decided = run_pure(instances, &[9, 9, 9, 9, 9], honest);
        assert!(decided.iter().all(|d| *d == Some(9)));
    }

    #[test]
    fn all_honest_mixed_inputs_agree() {
        let n = 5;
        let instances: Vec<PhaseKing> = (0..n).map(|me| PhaseKing::new(me, n, 1)).collect();
        let decided = run_pure(instances, &[1, 2, 1, 2, 1], honest);
        assert!(decided.iter().all(|d| d.is_some()));
        assert!(decided.iter().all(|d| *d == decided[0]), "{decided:?}");
    }

    #[test]
    fn byzantine_garbler_cannot_break_agreement() {
        let n = 5;
        let instances: Vec<PhaseKing> = (0..n).map(|me| PhaseKing::new(me, n, 1)).collect();
        let decided = run_pure(
            instances,
            &[3, 3, 3, 3, 0],
            |from: usize, _r: u64, to: usize, _p: &[u8]| {
                (from == 4).then(|| vec![to as u8, 0xba, 0xd0])
            },
        );
        for (me, d) in decided.iter().enumerate().take(4) {
            assert_eq!(*d, Some(3), "validity for honest p{me}");
        }
    }

    #[test]
    fn byzantine_equivocating_king_cannot_break_agreement() {
        // p0 is the first king and lies differently to each peer.
        let n = 5;
        let instances: Vec<PhaseKing> = (0..n).map(|me| PhaseKing::new(me, n, 1)).collect();
        let decided = run_pure(
            instances,
            &[0, 1, 2, 1, 2],
            |from: usize, _r: u64, to: usize, _p: &[u8]| {
                (from == 0).then(|| PhaseKing::encode(TAG_KING, to as u64))
            },
        );
        let honest: Vec<_> = (1..5).map(|i| decided[i]).collect();
        assert!(honest.iter().all(|d| d.is_some()));
        assert!(honest.iter().all(|d| *d == honest[0]), "{honest:?}");
    }

    #[test]
    fn two_faults_with_nine_processors() {
        let n = 9;
        let instances: Vec<PhaseKing> = (0..n).map(|me| PhaseKing::new(me, n, 2)).collect();
        let inputs = vec![5, 5, 5, 5, 5, 5, 5, 0, 0];
        let decided = run_pure(
            instances,
            &inputs,
            |from: usize, _r: u64, to: usize, _p: &[u8]| {
                (from >= 7).then(|| PhaseKing::encode(TAG_VALUE, (to * 31) as u64))
            },
        );
        for (me, d) in decided.iter().enumerate().take(7) {
            assert_eq!(*d, Some(5), "honest p{me}");
        }
    }

    #[test]
    #[should_panic(expected = "n > 4f")]
    fn rejects_insufficient_n() {
        PhaseKing::new(0, 4, 1);
    }

    #[test]
    fn duplicate_votes_from_one_sender_count_once() {
        let mut pk = PhaseKing::new(0, 5, 1);
        pk.begin(1);
        let spam = PhaseKing::encode(TAG_VALUE, 9);
        let inbox: Vec<(usize, &[u8])> = vec![
            (1, spam.as_slice()),
            (1, spam.as_slice()),
            (1, spam.as_slice()),
        ];
        pk.tally(&inbox);
        // Own vote for 1 plus one vote for 9 → maj has mult 1 (tie broken
        // toward the smaller value 1).
        assert_eq!(pk.mult, 1);
        assert_eq!(pk.maj, 1);
    }

    #[test]
    fn rounds_scale_with_f() {
        assert_eq!(PhaseKing::new(0, 5, 1).rounds(), 5);
        assert_eq!(PhaseKing::new(0, 9, 2).rounds(), 7);
    }
}

//! Tiny length-prefixed binary codec for protocol messages.
//!
//! Byzantine processes send arbitrary bytes, so every decoder here is
//! total: malformed input yields `None`, never a panic. Protocols treat
//! undecodable messages as absent (the oral-messages model's "no message"
//! default).

/// Append-only encoder.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a big-endian u16.
    pub fn put_u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian u32.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian u64.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a u16-length-prefixed byte string.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds `u16::MAX` — protocol payloads are tiny.
    pub fn put_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        let len = u16::try_from(bytes.len()).expect("payload fits u16 length");
        self.put_u16(len);
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Finishes, returning the encoded buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-based decoder; every getter is failure-safe.
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Whether the cursor consumed everything.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Reads a big-endian u16.
    pub fn get_u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_be_bytes([s[0], s[1]]))
    }

    /// Reads a big-endian u32.
    pub fn get_u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a big-endian u64.
    pub fn get_u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_be_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Reads a u16-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.get_u16()? as usize;
        self.take(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = Writer::new();
        w.put_u8(7).put_u16(300).put_u32(70_000).put_u64(u64::MAX);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8(), Some(7));
        assert_eq!(r.get_u16(), Some(300));
        assert_eq!(r.get_u32(), Some(70_000));
        assert_eq!(r.get_u64(), Some(u64::MAX));
        assert!(r.is_exhausted());
    }

    #[test]
    fn round_trip_bytes() {
        let mut w = Writer::new();
        w.put_bytes(b"hello").put_bytes(b"");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_bytes(), Some(b"hello".as_slice()));
        assert_eq!(r.get_bytes(), Some(b"".as_slice()));
    }

    #[test]
    fn truncated_input_yields_none() {
        let mut w = Writer::new();
        w.put_u64(42);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..5]);
        assert_eq!(r.get_u64(), None);
    }

    #[test]
    fn bogus_length_prefix_yields_none() {
        let mut r = Reader::new(&[0xff, 0xff, 1, 2, 3]);
        assert_eq!(r.get_bytes(), None);
    }

    #[test]
    fn empty_reader() {
        let mut r = Reader::new(&[]);
        assert_eq!(r.get_u8(), None);
        assert!(r.is_exhausted());
    }
}

//! Interactive consistency and multivalued consensus.
//!
//! [`VectorConsensus`] runs `n` parallel broadcast instances — one per
//! source — multiplexed over the same rounds, producing the classic
//! *interactive consistency* vector; the consensus decision is the strict
//! majority of the agreed vector (default when none). This is the shape the
//! judicial service uses: "the Byzantine agreement protocol is used in
//! order to ensure that all agents agree on the set of commitments" (§3.3)
//! — each agent broadcasts its commitment digest, everyone agrees on the
//! whole vector.

use bytes::Bytes;
use ga_crypto::mac::Authenticator;

use crate::dolev_strong::DolevStrongBroadcast;
use crate::om::OmBroadcast;
use crate::traits::{BaInstance, Send};
use crate::wire::{Reader, Writer};
use crate::{Value, DEFAULT_VALUE};

/// Majority consensus over `n` parallel per-source broadcasts.
///
/// Generic over the broadcast protocol `B`; see [`OmConsensus`] and
/// [`DolevStrongConsensus`] for ready-made instantiations.
pub struct VectorConsensus<B> {
    me: usize,
    n: usize,
    instances: Vec<B>,
    decided: Option<Value>,
}

impl<B: BaInstance> std::fmt::Debug for VectorConsensus<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VectorConsensus")
            .field("me", &self.me)
            .field("n", &self.n)
            .field("decided", &self.decided)
            .finish_non_exhaustive()
    }
}

impl<B: BaInstance> VectorConsensus<B> {
    /// Builds from one broadcast instance per source (`instances[s]` must
    /// be the instance whose source is `s`, from `me`'s perspective).
    ///
    /// # Panics
    ///
    /// Panics if `instances` is empty or `me` is out of range.
    pub fn from_instances(me: usize, instances: Vec<B>) -> VectorConsensus<B> {
        assert!(!instances.is_empty(), "need at least one source");
        assert!(me < instances.len(), "me out of range");
        VectorConsensus {
            me,
            n: instances.len(),
            instances,
            decided: None,
        }
    }

    /// The agreed per-source vector (fully populated after the final
    /// round).
    pub fn vector(&self) -> Vec<Option<Value>> {
        self.instances.iter().map(|i| i.decided()).collect()
    }
}

impl<B: BaInstance> BaInstance for VectorConsensus<B> {
    fn begin(&mut self, input: Value) {
        for (src, inst) in self.instances.iter_mut().enumerate() {
            // Only my own broadcast carries my input; for others I am a
            // relay/receiver and the input is irrelevant.
            inst.begin(if src == self.me { input } else { DEFAULT_VALUE });
        }
        self.decided = None;
    }

    fn step(&mut self, rel_round: u64, inbox: &[(usize, &[u8])], send: &mut Send<'_>) {
        // Demultiplex: each wire message is a sequence of
        // (instance u16, inner payload) parts.
        let mut per_instance: Vec<Vec<(usize, &[u8])>> = vec![Vec::new(); self.n];
        for &(sender, payload) in inbox {
            let mut r = Reader::new(payload);
            while !r.is_exhausted() {
                let Some(idx) = r.get_u16() else { break };
                let Some(inner) = r.get_bytes() else { break };
                if let Some(bucket) = per_instance.get_mut(idx as usize) {
                    bucket.push((sender, inner));
                }
            }
        }

        // Step every instance, capturing sends; then re-multiplex per
        // destination into a single wire message.
        let mut outgoing: Vec<Vec<(u16, Bytes)>> = vec![Vec::new(); self.n];
        for (idx, inst) in self.instances.iter_mut().enumerate() {
            let mut capture = |to: usize, payload: Bytes| {
                if let Some(bucket) = outgoing.get_mut(to) {
                    bucket.push((idx as u16, payload));
                }
            };
            inst.step(rel_round, &per_instance[idx], &mut capture);
        }
        for (to, parts) in outgoing.into_iter().enumerate() {
            if parts.is_empty() {
                continue;
            }
            let mut w = Writer::new();
            for (idx, inner) in parts {
                w.put_u16(idx);
                w.put_bytes(&inner);
            }
            send(to, w.finish().into());
        }

        if rel_round == self.rounds() - 1 {
            self.decided = Some(majority(self.vector().into_iter().flatten(), self.n));
        }
    }

    fn rounds(&self) -> u64 {
        self.instances[0].rounds()
    }

    fn decided(&self) -> Option<Value> {
        self.decided
    }

    fn name(&self) -> &'static str {
        "vector-consensus"
    }
}

/// Strict-majority vote over `values` with population size `n`; falls back
/// to [`DEFAULT_VALUE`].
pub fn majority(values: impl IntoIterator<Item = Value>, n: usize) -> Value {
    let mut counts: std::collections::HashMap<Value, usize> = Default::default();
    for v in values {
        *counts.entry(v).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .find(|&(_, c)| 2 * c > n)
        .map(|(v, _)| v)
        .unwrap_or(DEFAULT_VALUE)
}

/// Oral-messages interactive consistency: `n > 3f`, `f+2` rounds,
/// exponential messages.
pub type OmConsensus = VectorConsensus<OmBroadcast>;

impl OmConsensus {
    /// Creates the OM-backed consensus instance for processor `me`.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3f`.
    pub fn new(me: usize, n: usize, f: usize) -> OmConsensus {
        let instances = (0..n).map(|src| OmBroadcast::new(me, n, f, src)).collect();
        VectorConsensus::from_instances(me, instances)
    }
}

/// Authenticated interactive consistency: honest majority (`f < n/2`),
/// `f+2` rounds, polynomial messages.
pub type DolevStrongConsensus = VectorConsensus<DolevStrongBroadcast>;

impl DolevStrongConsensus {
    /// Creates the authenticated consensus instance; `auth` must be `me`'s
    /// authenticator from the shared key ring.
    pub fn new(me: usize, n: usize, f: usize, auth: Authenticator) -> DolevStrongConsensus {
        let instances = (0..n)
            .map(|src| DolevStrongBroadcast::new(me, n, f, src, auth.clone()))
            .collect();
        VectorConsensus::from_instances(me, instances)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{no_tamper as honest, run_pure};
    use ga_crypto::mac::KeyRing;

    #[test]
    fn om_consensus_all_honest_majority_wins() {
        let n = 4;
        let instances: Vec<OmConsensus> = (0..n).map(|me| OmConsensus::new(me, n, 1)).collect();
        let decided = run_pure(instances, &[5, 5, 5, 9], honest);
        assert!(decided.iter().all(|d| *d == Some(5)));
    }

    #[test]
    fn om_consensus_with_silent_byzantine_agrees() {
        let n = 4;
        let instances: Vec<OmConsensus> = (0..n).map(|me| OmConsensus::new(me, n, 1)).collect();
        let decided = run_pure(
            instances,
            &[5, 5, 5, 5],
            |from: usize, _: u64, _: usize, _: &[u8]| (from == 1).then(Vec::new),
        );
        for me in [0usize, 2, 3] {
            assert_eq!(decided[me], Some(5), "honest p{me}");
        }
    }

    #[test]
    fn om_consensus_validity_unanimous_inputs() {
        let n = 7;
        let instances: Vec<OmConsensus> = (0..n).map(|me| OmConsensus::new(me, n, 2)).collect();
        let decided = run_pure(
            instances,
            &[7, 7, 7, 7, 7, 0, 0],
            |from: usize, _: u64, to: usize, _: &[u8]| {
                (from >= 5).then(|| vec![from as u8, to as u8, 0xff])
            },
        );
        for (me, d) in decided.iter().enumerate().take(5) {
            assert_eq!(*d, Some(7), "honest p{me}");
        }
    }

    #[test]
    fn ds_consensus_majority_with_f_near_half() {
        // n=5, f=2 (< n/2): three honest 4s must win.
        let n = 5;
        let r = KeyRing::generate(n, 7);
        let instances: Vec<DolevStrongConsensus> = (0..n)
            .map(|me| DolevStrongConsensus::new(me, n, 2, r.authenticator(me)))
            .collect();
        let decided = run_pure(
            instances,
            &[4, 4, 4, 9, 9],
            |from: usize, _: u64, _: usize, _: &[u8]| (from >= 3).then(|| vec![0u8; 3]),
        );
        for (me, d) in decided.iter().enumerate().take(3) {
            assert_eq!(*d, Some(4), "honest p{me}");
        }
    }

    #[test]
    fn vector_is_exposed_for_interactive_consistency() {
        let n = 4;
        let instances: Vec<OmConsensus> = (0..n).map(|me| OmConsensus::new(me, n, 1)).collect();
        let mut instances = instances;
        // Run manually to inspect the vector at the end.
        for (i, inst) in instances.iter_mut().enumerate() {
            inst.begin([10, 20, 30, 40][i]);
        }
        let rounds = instances[0].rounds();
        let mut pending: Vec<Vec<(usize, Bytes)>> = vec![Vec::new(); n];
        for round in 0..rounds {
            let inboxes = std::mem::replace(&mut pending, vec![Vec::new(); n]);
            for (i, inst) in instances.iter_mut().enumerate() {
                let inbox: Vec<(usize, &[u8])> =
                    inboxes[i].iter().map(|(s, p)| (*s, p.as_slice())).collect();
                let mut outgoing = Vec::new();
                {
                    let mut send = |to: usize, p: Bytes| outgoing.push((to, p));
                    inst.step(round, &inbox, &mut send);
                }
                for (to, p) in outgoing {
                    pending[to].push((i, p));
                }
            }
        }
        for inst in &instances {
            assert_eq!(
                inst.vector(),
                vec![Some(10), Some(20), Some(30), Some(40)],
                "interactive consistency vector"
            );
            // No strict majority among {10,20,30,40} → default.
            assert_eq!(inst.decided(), Some(DEFAULT_VALUE));
        }
    }

    #[test]
    fn majority_helper() {
        assert_eq!(majority([1, 1, 1, 2], 4), 1);
        assert_eq!(majority([1, 1, 2, 2], 4), DEFAULT_VALUE);
        assert_eq!(majority(std::iter::empty(), 4), DEFAULT_VALUE);
        assert_eq!(majority([5, 5, 5], 4), 5);
    }
}

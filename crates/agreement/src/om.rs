//! Oral-messages Byzantine broadcast and consensus (Lamport–Shostak–Pease).
//!
//! [`OmBroadcast`] is the classic OM(f) algorithm over an [`EigTree`]:
//! a designated source broadcasts, everyone relays for `f` further rounds,
//! then resolves by recursive majority. Guarantees, for `n > 3f`:
//!
//! * **Agreement** — all honest processors decide the same value;
//! * **Validity** — if the source is honest, they decide its value;
//! * **Termination** — after exactly `f+2` steps (send + `f` relays +
//!   resolve).
//!
//! [`OmConsensus`](crate::consensus::OmConsensus) runs `n` broadcasts in parallel (every processor is the
//! source of its own input) and decides the majority of the agreed vector —
//! interactive consistency, the form the judicial service uses to agree on
//! per-agent commitments.

use crate::eig::{valid_path, EigTree, Path};
use crate::traits::{broadcast_others, BaInstance, Send};
use crate::wire::{Reader, Writer};
use crate::{Value, DEFAULT_VALUE};

/// One OM(f) broadcast instance at one processor.
#[derive(Debug, Clone)]
pub struct OmBroadcast {
    me: usize,
    n: usize,
    f: usize,
    source: usize,
    input: Value,
    tree: EigTree,
    decided: Option<Value>,
}

impl OmBroadcast {
    /// Creates the instance for processor `me` with broadcast source
    /// `source`.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3f` and ids are in range.
    pub fn new(me: usize, n: usize, f: usize, source: usize) -> OmBroadcast {
        assert!(n > 3 * f, "oral messages require n > 3f");
        assert!(me < n && source < n, "ids in range");
        OmBroadcast {
            me,
            n,
            f,
            source,
            input: DEFAULT_VALUE,
            tree: EigTree::new(),
            decided: None,
        }
    }

    /// Builds the relay payload for `level` and mirrors every relayed node
    /// `α·me` into the local tree — in EIG terms, "me told myself" the same
    /// value it told everyone else, so the local resolve sees its own vote.
    fn relay_level(&mut self, level: usize) -> Vec<u8> {
        // Entries: (path, value) for stored level-`level` nodes not
        // containing me; we relay them with our id appended.
        let mut entries: Vec<(Path, Value)> = self
            .tree
            .level(level)
            .filter(|(p, _)| !p.contains(&(self.me as u16)))
            .map(|(p, v)| {
                let mut np = p.clone();
                np.push(self.me as u16);
                (np, v)
            })
            .collect();
        entries.sort();
        for (path, value) in &entries {
            self.tree.store(path.clone(), *value);
        }
        let mut w = Writer::new();
        w.put_u32(entries.len() as u32);
        for (path, value) in entries {
            w.put_u8(path.len() as u8);
            for id in path {
                w.put_u16(id);
            }
            w.put_u64(value);
        }
        w.finish()
    }

    fn decode_and_store(&mut self, sender: usize, payload: &[u8], expect_len: usize) {
        let mut r = Reader::new(payload);
        let Some(count) = r.get_u32() else { return };
        // Cap: a Byzantine sender cannot blow up memory.
        let max_entries = 4 * self.n.pow(self.f as u32 + 1) as u32 + 16;
        for _ in 0..count.min(max_entries) {
            let Some(len) = r.get_u8() else { return };
            let mut path = Vec::with_capacity(len as usize);
            for _ in 0..len {
                match r.get_u16() {
                    Some(id) => path.push(id),
                    None => return,
                }
            }
            let Some(value) = r.get_u64() else { return };
            if valid_path(&path, expect_len, self.source as u16, sender, self.n) {
                self.tree.store(path, value);
            }
        }
    }
}

impl BaInstance for OmBroadcast {
    fn begin(&mut self, input: Value) {
        self.input = input;
        self.tree.reset();
        self.decided = None;
    }

    fn step(&mut self, rel_round: u64, inbox: &[(usize, &[u8])], send: &mut Send<'_>) {
        let f = self.f as u64;
        match rel_round {
            // Step 0: the source announces; everyone else is silent and
            // ignores its round-0 inbox (stale cross-period traffic must
            // not enter the tree — the self-stabilizing wrap relies on it).
            0 => {
                if self.me != self.source {
                    return;
                }
                self.tree.store(vec![self.source as u16], self.input);
                let mut w = Writer::new();
                w.put_u32(1);
                w.put_u8(1);
                w.put_u16(self.source as u16);
                w.put_u64(self.input);
                broadcast_others(self.n, self.me, w.finish(), send);
            }
            // Steps 1..=f: store level-t nodes, relay as level-(t+1).
            t if t <= f => {
                for &(sender, payload) in inbox {
                    self.decode_and_store(sender, payload, t as usize);
                }
                let relay = self.relay_level(t as usize);
                broadcast_others(self.n, self.me, relay, send);
            }
            // Step f+1: store the leaves and resolve.
            t if t == f + 1 => {
                for &(sender, payload) in inbox {
                    self.decode_and_store(sender, payload, t as usize);
                }
                self.decided = Some(self.tree.resolve(self.source as u16, self.n, self.f));
            }
            _ => {}
        }
    }

    fn rounds(&self) -> u64 {
        self.f as u64 + 2
    }

    fn decided(&self) -> Option<Value> {
        self.decided
    }

    fn name(&self) -> &'static str {
        "om-broadcast"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{no_tamper as honest, run_pure};

    #[test]
    fn broadcast_all_honest_delivers_source_value() {
        let n = 4;
        let instances: Vec<OmBroadcast> = (0..n).map(|me| OmBroadcast::new(me, n, 1, 2)).collect();
        let inputs = vec![0, 0, 99, 0];
        let decided = run_pure(instances, &inputs, honest);
        assert!(decided.iter().all(|d| *d == Some(99)));
    }

    #[test]
    fn broadcast_byzantine_relay_still_agrees_on_source_value() {
        // n=4, f=1, source 0 honest, process 3 garbles every relay.
        let n = 4;
        let instances: Vec<OmBroadcast> = (0..n).map(|me| OmBroadcast::new(me, n, 1, 0)).collect();
        let inputs = vec![42, 0, 0, 0];
        let decided = run_pure(
            instances,
            &inputs,
            |from: usize, _r: u64, _to: usize, _p: &[u8]| (from == 3).then(|| vec![0xde, 0xad]),
        );
        for (me, d) in decided.iter().enumerate().take(3) {
            assert_eq!(*d, Some(42), "honest p{me}");
        }
    }

    #[test]
    fn broadcast_byzantine_source_still_agreement() {
        // Source 0 equivocates: tells evens 7, odds 8. Honest must *agree*
        // (any common value).
        let n = 4;
        let instances: Vec<OmBroadcast> = (0..n).map(|me| OmBroadcast::new(me, n, 1, 0)).collect();
        let inputs = vec![7, 0, 0, 0];
        let decided = run_pure(
            instances,
            &inputs,
            |from: usize, round: u64, to: usize, p: &[u8]| {
                if from == 0 && round == 0 {
                    let mut w = Writer::new();
                    w.put_u32(1);
                    w.put_u8(1);
                    w.put_u16(0);
                    w.put_u64(if to.is_multiple_of(2) { 7 } else { 8 });
                    Some(w.finish())
                } else if from == 0 {
                    Some(p.to_vec())
                } else {
                    None
                }
            },
        );
        let honest_decisions: Vec<_> = (1..4).map(|i| decided[i]).collect();
        assert!(honest_decisions.iter().all(|d| *d == honest_decisions[0]));
    }

    #[test]
    #[should_panic(expected = "n > 3f")]
    fn rejects_insufficient_n() {
        OmBroadcast::new(0, 3, 1, 0);
    }

    #[test]
    fn non_source_is_silent_and_deaf_at_round_zero() {
        // Regression: round 0 must neither send nor decode for non-source
        // processes — stale cross-period traffic arriving at a restarted
        // instance's round 0 must not enter the EIG tree.
        let mut inst = OmBroadcast::new(1, 4, 1, 0);
        inst.begin(0);
        let mut w = Writer::new();
        w.put_u32(1);
        w.put_u8(1);
        w.put_u16(0);
        w.put_u64(99); // forged "source said 99"
        let stale = w.finish();
        let inbox: Vec<(usize, &[u8])> = vec![(3, stale.as_slice())];
        let sent = std::cell::Cell::new(0usize);
        let mut send = |_to: usize, _p: bytes::Bytes| sent.set(sent.get() + 1);
        inst.step(0, &inbox, &mut send);
        assert_eq!(sent.get(), 0, "non-source stays silent at round 0");
        // Run the remaining rounds with no traffic at all: the forged
        // round-0 message must not have seeded the tree with 99.
        for r in 1..inst.rounds() {
            inst.step(r, &[], &mut send);
        }
        assert_eq!(inst.decided(), Some(DEFAULT_VALUE));
    }

    #[test]
    fn restart_discards_state() {
        let n = 4;
        let instances: Vec<OmBroadcast> = (0..n).map(|me| OmBroadcast::new(me, n, 1, 0)).collect();
        let first = run_pure(instances.clone(), &[11, 0, 0, 0], honest);
        assert!(first.iter().all(|d| *d == Some(11)));
        // Re-begin with a different input: prior tree must not leak.
        let second = run_pure(instances, &[23, 0, 0, 0], honest);
        assert!(second.iter().all(|d| *d == Some(23)));
    }
}

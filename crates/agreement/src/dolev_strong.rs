//! Authenticated Byzantine broadcast (Dolev–Strong signature chains).
//!
//! With message authentication the fault threshold collapses: broadcast
//! works for *any* number of Byzantine processors, and multivalued
//! consensus needs only an honest majority — the paper's footnote 2
//! ("authentication utilizes a Byzantine agreement that needs only a
//! majority").
//!
//! Protocol: the source signs its value and sends it. A processor that
//! accepts, at step `t`, a valid chain with `t` distinct signatures
//! starting with the source, adds the value to its accepted set and — if
//! `t ≤ f` — relays the chain extended with its own signature. After step
//! `f+1`, a processor decides the unique accepted value, or the default if
//! it accepted zero or several (the source equivocated).

use std::collections::BTreeSet;

use ga_crypto::mac::{Authenticator, SignatureChain, Tag};

use crate::traits::{broadcast_others, BaInstance, Send};
use crate::wire::{Reader, Writer};
use crate::{Value, DEFAULT_VALUE};

/// One authenticated broadcast instance at one processor.
pub struct DolevStrongBroadcast {
    me: usize,
    n: usize,
    f: usize,
    source: usize,
    auth: Authenticator,
    input: Value,
    accepted: BTreeSet<Value>,
    /// Values we have already relayed (relay each at most once).
    relayed: BTreeSet<Value>,
    decided: Option<Value>,
}

impl std::fmt::Debug for DolevStrongBroadcast {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DolevStrongBroadcast")
            .field("me", &self.me)
            .field("source", &self.source)
            .field("decided", &self.decided)
            .finish_non_exhaustive()
    }
}

impl DolevStrongBroadcast {
    /// Creates the instance for processor `me`; `auth` must be `me`'s
    /// authenticator from the shared key ring.
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range or `auth` is not `me`'s.
    pub fn new(me: usize, n: usize, f: usize, source: usize, auth: Authenticator) -> Self {
        assert!(me < n && source < n, "ids in range");
        assert_eq!(auth.id(), me, "authenticator must belong to this processor");
        DolevStrongBroadcast {
            me,
            n,
            f,
            source,
            auth,
            input: DEFAULT_VALUE,
            accepted: BTreeSet::new(),
            relayed: BTreeSet::new(),
            decided: None,
        }
    }

    fn encode_chain(chain: &SignatureChain) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(chain.value());
        w.put_u16(chain.len() as u16);
        for signer in chain.signers() {
            w.put_u16(signer as u16);
        }
        // Tags, in the same order.
        for (signer, tag) in chain_links(chain) {
            let _ = signer;
            w.put_bytes(&tag);
        }
        w.finish()
    }

    fn decode_chain(payload: &[u8]) -> Option<SignatureChain> {
        let mut r = Reader::new(payload);
        let value = r.get_bytes()?.to_vec();
        let count = r.get_u16()? as usize;
        if count == 0 || count > 1024 {
            return None;
        }
        let mut signers = Vec::with_capacity(count);
        for _ in 0..count {
            signers.push(r.get_u16()? as usize);
        }
        let mut links = Vec::with_capacity(count);
        for signer in signers {
            let tag_bytes = r.get_bytes()?;
            let tag: Tag = tag_bytes.try_into().ok()?;
            links.push((signer, tag));
        }
        Some(rebuild_chain(value, links))
    }

    fn value_of(chain: &SignatureChain) -> Option<Value> {
        chain.value().try_into().ok().map(u64::from_be_bytes)
    }

    fn accept_and_relay(&mut self, step: u64, inbox: &[(usize, &[u8])], send: &mut Send<'_>) {
        for &(_, payload) in inbox {
            let Some(chain) = Self::decode_chain(payload) else {
                continue;
            };
            // Validity conditions per Dolev–Strong.
            if !chain.valid(&self.auth) {
                continue;
            }
            let signers: Vec<usize> = chain.signers().collect();
            if signers.first() != Some(&self.source) {
                continue;
            }
            if (chain.len() as u64) < step {
                continue; // stale chain, too few signatures for this step
            }
            if signers.contains(&self.me) {
                continue;
            }
            let Some(value) = Self::value_of(&chain) else {
                continue;
            };
            let newly = self.accepted.insert(value);
            // Track at most two values — enough to detect equivocation.
            if newly
                && self.accepted.len() <= 2
                && step <= self.f as u64
                && self.relayed.insert(value)
            {
                let extended = chain.extend(&self.auth);
                broadcast_others(self.n, self.me, Self::encode_chain(&extended), send);
            }
        }
    }
}

/// Reconstructs a chain from decoded parts. Lives outside the impl so the
/// crypto crate's private fields stay private: we re-create the chain
/// through its public constructor path by replaying the links.
fn rebuild_chain(value: Vec<u8>, links: Vec<(usize, Tag)>) -> SignatureChain {
    SignatureChain::from_parts(value, links)
}

/// Extracts the chain's links.
fn chain_links(chain: &SignatureChain) -> Vec<(usize, Tag)> {
    chain.links().to_vec()
}

impl BaInstance for DolevStrongBroadcast {
    fn begin(&mut self, input: Value) {
        self.input = input;
        self.accepted.clear();
        self.relayed.clear();
        self.decided = None;
    }

    fn step(&mut self, rel_round: u64, inbox: &[(usize, &[u8])], send: &mut Send<'_>) {
        let f = self.f as u64;
        match rel_round {
            // Step 0: only the source signs and sends; everyone else stays
            // silent and ignores its round-0 inbox (stale cross-period
            // chains must not be accepted — the self-stabilizing wrap
            // relies on it, and the `chain.len() < step` staleness guard
            // is vacuous at step 0).
            0 => {
                if self.me != self.source {
                    return;
                }
                let chain = SignatureChain::originate(&self.auth, &self.input.to_be_bytes());
                self.accepted.insert(self.input);
                broadcast_others(self.n, self.me, Self::encode_chain(&chain), send);
            }
            t if t <= f + 1 => {
                self.accept_and_relay(t, inbox, send);
                if t == f + 1 {
                    self.decided = Some(if self.accepted.len() == 1 {
                        *self.accepted.iter().next().expect("len checked")
                    } else {
                        DEFAULT_VALUE
                    });
                }
            }
            _ => {}
        }
    }

    fn rounds(&self) -> u64 {
        self.f as u64 + 2
    }

    fn decided(&self) -> Option<Value> {
        self.decided
    }

    fn name(&self) -> &'static str {
        "dolev-strong"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{no_tamper as honest, run_pure};
    use ga_crypto::mac::KeyRing;

    fn ring(n: usize) -> KeyRing {
        KeyRing::generate(n, 2024)
    }

    #[test]
    fn broadcast_honest_source() {
        let n = 4;
        let r = ring(n);
        let instances: Vec<DolevStrongBroadcast> = (0..n)
            .map(|me| DolevStrongBroadcast::new(me, n, 1, 0, r.authenticator(me)))
            .collect();
        let decided = run_pure(instances, &[77, 0, 0, 0], honest);
        assert!(decided.iter().all(|d| *d == Some(77)));
    }

    #[test]
    fn equivocating_source_yields_common_default() {
        // Source signs two different values and sends one to each half.
        // Honest relays expose the equivocation: everyone accepts both
        // values and falls to the default.
        let n = 4;
        let r = ring(n);
        let auth0 = r.authenticator(0);
        let instances: Vec<DolevStrongBroadcast> = (0..n)
            .map(|me| DolevStrongBroadcast::new(me, n, 1, 0, r.authenticator(me)))
            .collect();
        let decided = run_pure(
            instances,
            &[7, 0, 0, 0],
            |from: usize, round: u64, to: usize, _p: &[u8]| {
                if from == 0 && round == 0 {
                    let v: u64 = if to.is_multiple_of(2) { 7 } else { 8 };
                    let chain = SignatureChain::originate(&auth0, &v.to_be_bytes());
                    Some(DolevStrongBroadcast::encode_chain(&chain))
                } else {
                    None
                }
            },
        );
        let honest_decisions: Vec<_> = (1..4).map(|i| decided[i]).collect();
        assert!(honest_decisions.iter().all(|d| *d == honest_decisions[0]));
        assert_eq!(honest_decisions[0], Some(DEFAULT_VALUE));
    }

    #[test]
    fn forged_chain_rejected() {
        // A Byzantine relay tampers with the value; MAC verification drops
        // the chain, so validity holds for the honest source's value.
        let n = 4;
        let r = ring(n);
        let instances: Vec<DolevStrongBroadcast> = (0..n)
            .map(|me| DolevStrongBroadcast::new(me, n, 1, 0, r.authenticator(me)))
            .collect();
        let decided = run_pure(
            instances,
            &[50, 0, 0, 0],
            |from: usize, round: u64, _to: usize, p: &[u8]| {
                if from == 3 && round > 0 {
                    // Flip a byte mid-payload.
                    let mut bad = p.to_vec();
                    if bad.len() > 4 {
                        bad[4] ^= 0xff;
                    }
                    Some(bad)
                } else {
                    None
                }
            },
        );
        for (me, d) in decided.iter().enumerate().take(3) {
            assert_eq!(*d, Some(50), "honest p{me}");
        }
    }

    #[test]
    fn non_source_is_silent_and_deaf_at_round_zero() {
        // Regression: a validly-signed stale chain landing at round 0
        // (e.g. re-sent across an SSBA period wrap) must be ignored — the
        // `chain.len() < step` staleness guard is vacuous at step 0.
        let r = ring(4);
        let stale_chain = SignatureChain::originate(&r.authenticator(0), &7u64.to_be_bytes());
        let encoded = DolevStrongBroadcast::encode_chain(&stale_chain);
        let mut inst = DolevStrongBroadcast::new(1, 4, 1, 0, r.authenticator(1));
        inst.begin(0);
        let inbox: Vec<(usize, &[u8])> = vec![(3, encoded.as_slice())];
        let sent = std::cell::Cell::new(0usize);
        let mut send = |_to: usize, _p: bytes::Bytes| sent.set(sent.get() + 1);
        inst.step(0, &inbox, &mut send);
        assert_eq!(sent.get(), 0, "non-source stays silent at round 0");
        for rel in 1..inst.rounds() {
            inst.step(rel, &[], &mut send);
        }
        assert_eq!(
            inst.decided(),
            Some(DEFAULT_VALUE),
            "stale round-0 chain was not accepted"
        );
    }

    #[test]
    fn chain_codec_round_trip() {
        let r = ring(3);
        let chain = SignatureChain::originate(&r.authenticator(0), &42u64.to_be_bytes());
        let chain = chain.extend(&r.authenticator(1));
        let encoded = DolevStrongBroadcast::encode_chain(&chain);
        let decoded = DolevStrongBroadcast::decode_chain(&encoded).unwrap();
        assert!(decoded.valid(&r.authenticator(2)));
        assert_eq!(DolevStrongBroadcast::value_of(&decoded), Some(42),);
    }

    #[test]
    fn restart_clears_accepted_values() {
        let n = 4;
        let r = ring(n);
        let make = || -> Vec<DolevStrongBroadcast> {
            (0..n)
                .map(|me| DolevStrongBroadcast::new(me, n, 1, 0, r.authenticator(me)))
                .collect()
        };
        let first = run_pure(make(), &[5, 0, 0, 0], honest);
        assert!(first.iter().all(|d| *d == Some(5)));
        let second = run_pure(make(), &[6, 0, 0, 0], honest);
        assert!(second.iter().all(|d| *d == Some(6)));
    }
}

//! The restartable [`BaInstance`] state machine and its simulator adapter.
//!
//! Theorem 1 composes clock synchronization with a BA protocol by
//! *re-invoking* the protocol whenever the synchronized clock wraps to 1.
//! To support that, protocols are not one-shot: they implement `begin` to
//! hard-reset all internal state (this is exactly what makes the composed
//! system self-stabilizing — stale BA state from before a transient fault is
//! discarded at the next wrap).

use bytes::Bytes;
use ga_simnet::prelude::*;

use crate::Value;

/// A send callback: `(destination process, payload)`.
///
/// Payloads are refcounted [`Bytes`]: a broadcast hands every destination a
/// clone of one shared buffer, so fan-out costs no per-recipient copies all
/// the way down to the simulator's inboxes.
pub type Send<'a> = dyn FnMut(usize, Bytes) + 'a;

/// A synchronous-round Byzantine agreement state machine.
///
/// The driver calls [`step`](BaInstance::step) with consecutive relative
/// rounds `0, 1, …, rounds()-1`; at each step the instance sees the
/// messages delivered this round (sent at the previous one) and may send.
/// After the final step, [`decided`](BaInstance::decided) is `Some`.
///
/// `Send` is a supertrait so a boxed instance can live inside a simulator
/// [`Process`], which the scheduler's sharded compute phase may step on a
/// worker thread.
pub trait BaInstance: std::marker::Send {
    /// Hard-resets state and installs this processor's input value.
    fn begin(&mut self, input: Value);

    /// Executes relative round `rel_round`.
    ///
    /// `inbox` holds `(sender, payload)` pairs. Implementations must treat
    /// undecodable payloads as absent — senders may be Byzantine.
    fn step(&mut self, rel_round: u64, inbox: &[(usize, &[u8])], send: &mut Send<'_>);

    /// Total number of rounds this instance needs.
    fn rounds(&self) -> u64;

    /// The decision, available once all rounds have run.
    fn decided(&self) -> Option<Value>;

    /// Diagnostic label.
    fn name(&self) -> &'static str {
        "ba"
    }
}

/// Runs one [`BaInstance`] as a `ga-simnet` process, starting at simulation
/// round 0.
pub struct BaProcess {
    instance: Box<dyn BaInstance>,
    started: bool,
    input: Value,
}

impl std::fmt::Debug for BaProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaProcess")
            .field("protocol", &self.instance.name())
            .field("decided", &self.instance.decided())
            .finish()
    }
}

impl BaProcess {
    /// Wraps `instance` with the given input value.
    pub fn new(instance: Box<dyn BaInstance>, input: Value) -> BaProcess {
        BaProcess {
            instance,
            started: false,
            input,
        }
    }

    /// The wrapped instance's decision.
    pub fn decided(&self) -> Option<Value> {
        self.instance.decided()
    }
}

impl Process for BaProcess {
    /// A transient fault leaves the executor mid-protocol with an
    /// arbitrary input: the wrapped instance is restarted (via its
    /// hard-reset `begin`) on a random value, so any prior decision is
    /// discarded — observable as `decided()` reverting to `None`.
    fn scramble(&mut self, rng: &mut rand::rngs::StdRng) {
        use rand::Rng;
        self.input = rng.gen();
        self.instance.begin(self.input);
        self.started = true;
    }

    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        if !self.started {
            self.instance.begin(self.input);
            self.started = true;
        }
        let rel = ctx.round().value();
        if rel >= self.instance.rounds() {
            return;
        }
        let inbox: Vec<(usize, &[u8])> = ctx
            .inbox()
            .iter()
            .map(|m| (m.from.index(), m.bytes()))
            .collect();
        // Collect sends first: ctx and the inbox borrow ctx disjointly only
        // if we buffer.
        let mut outgoing: Vec<(usize, Bytes)> = Vec::new();
        {
            let mut send = |to: usize, payload: Bytes| outgoing.push((to, payload));
            self.instance.step(rel, &inbox, &mut send);
        }
        drop(inbox);
        for (to, payload) in outgoing {
            ctx.send(ProcessId(to), payload);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "ba-process"
    }
}

/// Broadcast helper for instances: send `payload` to every process except
/// `me` (the instance also processes its own contribution locally).
///
/// The payload is converted to [`Bytes`] once; all `n - 1` destinations
/// share the single refcounted buffer.
pub fn broadcast_others(n: usize, me: usize, payload: impl Into<Bytes>, send: &mut Send<'_>) {
    let payload = payload.into();
    for to in 0..n {
        if to != me {
            send(to, payload.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake 2-round instance that decides the sum of inputs it saw.
    struct Echo {
        me: usize,
        n: usize,
        value: Value,
        seen: u64,
        decided: Option<Value>,
    }

    impl BaInstance for Echo {
        fn begin(&mut self, input: Value) {
            self.value = input;
            self.seen = 0;
            self.decided = None;
        }
        fn step(&mut self, rel_round: u64, inbox: &[(usize, &[u8])], send: &mut Send<'_>) {
            match rel_round {
                0 => broadcast_others(self.n, self.me, self.value.to_be_bytes(), send),
                1 => {
                    self.seen = self.value
                        + inbox
                            .iter()
                            .filter_map(|(_, p)| (*p).try_into().ok().map(u64::from_be_bytes))
                            .sum::<u64>();
                    self.decided = Some(self.seen);
                }
                _ => {}
            }
        }
        fn rounds(&self) -> u64 {
            2
        }
        fn decided(&self) -> Option<Value> {
            self.decided
        }
    }

    #[test]
    fn ba_process_drives_instance_over_simnet() {
        let n = 4;
        let mut sim = Simulation::builder(Topology::complete(n)).build_with(|id| {
            Box::new(BaProcess::new(
                Box::new(Echo {
                    me: id.index(),
                    n,
                    value: 0,
                    seen: 0,
                    decided: None,
                }),
                id.index() as u64 + 1,
            )) as Box<dyn Process>
        });
        sim.run(2);
        for i in 0..n {
            let p = sim.process_as::<BaProcess>(ProcessId(i)).unwrap();
            assert_eq!(p.decided(), Some(10), "1+2+3+4 everywhere");
        }
    }

    #[test]
    fn scramble_discards_the_decision_and_changes_input() {
        let mut p = BaProcess::new(
            Box::new(Echo {
                me: 0,
                n: 4,
                value: 0,
                seen: 0,
                decided: None,
            }),
            7,
        );
        p.instance.begin(7);
        p.started = true;
        p.instance.step(0, &[], &mut |_, _| {});
        p.instance.step(1, &[], &mut |_, _| {});
        assert!(p.decided().is_some());

        let mut rng = ga_simnet::rng::process_rng(1, ProcessId(0), Round(3));
        Process::scramble(&mut p, &mut rng);
        assert_eq!(p.decided(), None, "stale decision discarded");
        assert_ne!(p.input, 7, "input perturbed");
    }

    #[test]
    fn broadcast_others_skips_self() {
        let mut got = Vec::new();
        let mut send = |to: usize, _p: Bytes| got.push(to);
        broadcast_others(4, 2, b"x", &mut send);
        assert_eq!(got, vec![0, 1, 3]);
    }

    #[test]
    fn broadcast_others_shares_one_buffer() {
        let mut ptrs = Vec::new();
        let mut send = |_to: usize, p: Bytes| ptrs.push(p.as_ptr());
        broadcast_others(4, 0, vec![1u8, 2, 3], &mut send);
        assert_eq!(ptrs.len(), 3);
        assert!(ptrs.iter().all(|&p| p == ptrs[0]), "one allocation, shared");
    }
}

//! Property tests for the paper's games: Lemma 6 under arbitrary seeds
//! and sizes, water-filling invariants, grid-game consistency.

use ga_game_theory::game::Game;
use ga_game_theory::profile::PureProfile;
use ga_games::resource_allocation::{equilibrium_weights, RraProcess};
use ga_games::virus_inoculation::{VirusGame, INOCULATE, RISK};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lemma 6: Δ(k) ≤ 2n−1 under honest Nash play, for random sizes,
    /// seeds and horizons.
    #[test]
    fn lemma_6_holds(n in 2usize..9, b in 2usize..6, k in 1u64..400, seed in any::<u64>()) {
        let mut rra = RraProcess::new(n, b);
        let mut rng = StdRng::seed_from_u64(seed);
        for stats in rra.play(k, &mut rng) {
            prop_assert!(stats.gap < 2 * n as u64,
                         "Δ({}) = {} with n={n}, b={b}", stats.k, stats.gap);
        }
    }

    /// Theorem 5's bound holds at every round for random configurations.
    #[test]
    fn theorem_5_bound_holds(n in 2usize..7, b in 2usize..5, seed in any::<u64>()) {
        let mut rra = RraProcess::new(n, b);
        let mut rng = StdRng::seed_from_u64(seed);
        for stats in rra.play(300, &mut rng) {
            prop_assert!(stats.ratio <= stats.bound + 1e-9,
                         "R({}) = {} > {}", stats.k, stats.ratio, stats.bound);
        }
    }

    /// Water-filling always yields a probability distribution whose
    /// supported levels are equalized.
    #[test]
    fn equilibrium_weights_invariants(n in 2usize..10,
                                      loads in proptest::collection::vec(0u64..40, 2..8)) {
        let w = equilibrium_weights(n, &loads);
        prop_assert_eq!(w.len(), loads.len());
        prop_assert!(w.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
        prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        let nm1 = (n.max(2) - 1) as f64;
        let levels: Vec<f64> = loads
            .iter()
            .zip(&w)
            .filter(|(_, &x)| x > 1e-9)
            .map(|(&l, &x)| 1.0 + nm1 * x + l as f64)
            .collect();
        for pair in levels.windows(2) {
            prop_assert!((pair[0] - pair[1]).abs() < 1e-5, "{levels:?}");
        }
        // Off-support resources must be at least as loaded as the level.
        if let Some(&level) = levels.first() {
            for (&l, &x) in loads.iter().zip(&w) {
                if x <= 1e-9 {
                    prop_assert!(l as f64 + 1.0 >= level - 1e-6);
                }
            }
        }
    }

    /// Virus game: component sizes are consistent — each insecure agent's
    /// size is between 1 and the number of insecure agents; inoculated
    /// agents always have size 0.
    #[test]
    fn virus_components_consistent(side in 1usize..6, mask in any::<u64>()) {
        let game = VirusGame::new(side, 1.0, side as f64 * side as f64);
        let n = game.n();
        let actions: Vec<usize> = (0..n)
            .map(|i| if mask >> (i % 64) & 1 == 1 { INOCULATE } else { RISK })
            .collect();
        let profile = PureProfile::new(actions.clone());
        let sizes = game.component_sizes(&profile);
        let insecure = actions.iter().filter(|&&a| a == RISK).count();
        for (i, &s) in sizes.iter().enumerate() {
            if actions[i] == INOCULATE {
                prop_assert_eq!(s, 0);
            } else {
                prop_assert!(s >= 1 && s <= insecure);
            }
        }
        // Social cost equals the sum of per-agent costs by definition.
        let sum: f64 = (0..n).map(|i| game.cost(i, &profile)).sum();
        prop_assert!((game.social_cost(&profile) - sum).abs() < 1e-9);
    }

    /// Inoculating a node never increases any other node's component.
    #[test]
    fn inoculation_is_monotone(side in 2usize..5, node in any::<usize>()) {
        let game = VirusGame::new(side, 1.0, 10.0);
        let n = game.n();
        let node = node % n;
        let all_risk = PureProfile::new(vec![RISK; n]);
        let one_safe = all_risk.with_action(node, INOCULATE);
        let before = game.component_sizes(&all_risk);
        let after = game.component_sizes(&one_safe);
        for i in 0..n {
            if i != node {
                prop_assert!(after[i] <= before[i]);
            }
        }
    }
}

//! The prisoner's dilemma in cost form (years of prison).
//!
//! Used as the default "rules of the game" in examples: a complete
//! information game with a dominant-strategy equilibrium the judicial
//! service can audit trivially (the best response is always Defect).

use ga_game_theory::game::MatrixGame;

/// Action index: cooperate (stay silent).
pub const COOPERATE: usize = 0;
/// Action index: defect (betray).
pub const DEFECT: usize = 1;

/// The standard prisoner's dilemma: mutual cooperation costs 1 year each,
/// mutual defection 2 each, unilateral defection frees the defector (0)
/// and costs the cooperator 3.
pub fn prisoners_dilemma() -> MatrixGame {
    MatrixGame::from_costs(
        "prisoners-dilemma",
        vec![vec![(1.0, 1.0), (3.0, 0.0)], vec![(0.0, 3.0), (2.0, 2.0)]],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_game_theory::cost::{price_of_anarchy, price_of_stability};
    use ga_game_theory::nash::pure_nash_equilibria;
    use ga_game_theory::profile::PureProfile;

    #[test]
    fn defect_defect_is_the_unique_pne() {
        assert_eq!(
            pure_nash_equilibria(&prisoners_dilemma()),
            vec![PureProfile::new(vec![DEFECT, DEFECT])]
        );
    }

    #[test]
    fn anarchy_doubles_the_social_cost() {
        let g = prisoners_dilemma();
        assert_eq!(price_of_anarchy(&g), Some(2.0));
        assert_eq!(price_of_stability(&g), Some(2.0));
    }
}

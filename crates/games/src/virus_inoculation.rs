//! The virus inoculation game (Moscibroda, Schmid, Wattenhofer, PODC'06).
//!
//! The game the paper cites as the origin of the **price of malice**
//! (\[21\]): `n` nodes on a `side × side` grid each choose to inoculate
//! (fixed cost `C`) or not (expected infection cost `L · s/n`, where `s`
//! is the size of the node's *insecure connected component* — the virus
//! starts at a uniformly random node and spreads through non-inoculated
//! neighbors).
//!
//! Malicious agents in \[21\] *claim* to be inoculated while staying
//! insecure, enlarging their neighbors' components beyond what those
//! neighbors bargained for. Experiment E5 reproduces the resulting social
//! cost degradation — and its repair once the game authority audits claims
//! (commit–reveal makes the lie detectable; the executive service then
//! disconnects the liar).

use ga_game_theory::game::Game;
use ga_game_theory::profile::PureProfile;

/// Action index: stay insecure.
pub const RISK: usize = 0;
/// Action index: inoculate.
pub const INOCULATE: usize = 1;

/// The grid-structured inoculation game.
#[derive(Debug, Clone, PartialEq)]
pub struct VirusGame {
    side: usize,
    /// Inoculation cost `C`.
    pub inoculation_cost: f64,
    /// Infection loss `L`.
    pub infection_loss: f64,
}

impl VirusGame {
    /// Creates a `side × side` grid game with the given costs.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0` or costs are not positive.
    pub fn new(side: usize, inoculation_cost: f64, infection_loss: f64) -> VirusGame {
        assert!(side > 0, "grid must be non-empty");
        assert!(
            inoculation_cost > 0.0 && infection_loss > 0.0,
            "costs must be positive"
        );
        VirusGame {
            side,
            inoculation_cost,
            infection_loss,
        }
    }

    /// Number of agents (`side²`).
    pub fn n(&self) -> usize {
        self.side * self.side
    }

    /// Grid side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Grid neighbors of node `i` (4-neighborhood).
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        let (r, c) = (i / self.side, i % self.side);
        let mut out = Vec::with_capacity(4);
        if r > 0 {
            out.push(i - self.side);
        }
        if r + 1 < self.side {
            out.push(i + self.side);
        }
        if c > 0 {
            out.push(i - 1);
        }
        if c + 1 < self.side {
            out.push(i + 1);
        }
        out
    }

    /// Sizes of the insecure components: `component_of[i]` is the size of
    /// `i`'s non-inoculated component, or 0 if `i` is inoculated.
    /// `insecure(i)` is read from `profile` (action [`RISK`]).
    pub fn component_sizes(&self, profile: &PureProfile) -> Vec<usize> {
        let n = self.n();
        let mut comp = vec![usize::MAX; n];
        let mut sizes = Vec::new();
        for start in 0..n {
            if profile.action(start) != RISK || comp[start] != usize::MAX {
                continue;
            }
            // BFS over insecure nodes.
            let id = sizes.len();
            let mut queue = std::collections::VecDeque::from([start]);
            comp[start] = id;
            let mut size = 0usize;
            while let Some(u) = queue.pop_front() {
                size += 1;
                for v in self.neighbors(u) {
                    if profile.action(v) == RISK && comp[v] == usize::MAX {
                        comp[v] = id;
                        queue.push_back(v);
                    }
                }
            }
            sizes.push(size);
        }
        (0..n)
            .map(|i| {
                if profile.action(i) == RISK {
                    sizes[comp[i]]
                } else {
                    0
                }
            })
            .collect()
    }

    /// Social cost of a profile (sum over all agents).
    pub fn social_cost(&self, profile: &PureProfile) -> f64 {
        (0..self.n()).map(|i| self.cost(i, profile)).sum()
    }
}

impl Game for VirusGame {
    fn num_agents(&self) -> usize {
        self.n()
    }

    fn num_actions(&self, _agent: usize) -> usize {
        2
    }

    fn cost(&self, agent: usize, profile: &PureProfile) -> f64 {
        if profile.action(agent) == INOCULATE {
            self.inoculation_cost
        } else {
            let sizes = self.component_sizes(profile);
            self.infection_loss * sizes[agent] as f64 / self.n() as f64
        }
    }

    fn name(&self) -> &str {
        "virus-inoculation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_game_theory::nash::{best_response_dynamics, is_pure_nash};

    fn game() -> VirusGame {
        // Standard-ish parameters: C = 1, L = n (so a component of size s
        // costs s of expected loss to each member).
        VirusGame::new(3, 1.0, 9.0)
    }

    #[test]
    fn grid_neighbors_shape() {
        let g = game();
        assert_eq!(g.neighbors(4), vec![1, 7, 3, 5], "center has 4");
        assert_eq!(g.neighbors(0).len(), 2, "corner has 2");
        assert_eq!(g.neighbors(1).len(), 3, "edge has 3");
    }

    #[test]
    fn component_sizes_split_by_inoculation() {
        let g = game();
        // Inoculate the middle column (1,4,7): splits the grid into two
        // 3-node insecure columns.
        let mut actions = vec![RISK; 9];
        for i in [1, 4, 7] {
            actions[i] = INOCULATE;
        }
        let p = PureProfile::new(actions);
        let sizes = g.component_sizes(&p);
        assert_eq!(sizes[0], 3);
        assert_eq!(sizes[8], 3);
        assert_eq!(sizes[4], 0, "inoculated nodes have no component");
    }

    #[test]
    fn costs_follow_the_model() {
        let g = game();
        let mut actions = vec![RISK; 9];
        actions[4] = INOCULATE;
        let p = PureProfile::new(actions);
        assert_eq!(g.cost(4, &p), 1.0, "inoculation cost C");
        // Node 0's insecure component: all 8 risky nodes stay connected
        // around the ring (4 only blocks the center).
        assert!((g.cost(0, &p) - 9.0 * 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn nobody_inoculated_everyone_pays_full_loss() {
        let g = game();
        let p = PureProfile::new(vec![RISK; 9]);
        for i in 0..9 {
            assert!((g.cost(i, &p) - 9.0).abs() < 1e-12, "L·n/n = L");
        }
        assert!((g.social_cost(&p) - 81.0).abs() < 1e-9);
    }

    #[test]
    fn best_response_dynamics_reach_equilibrium() {
        let g = game();
        let d = best_response_dynamics(&g, PureProfile::new(vec![RISK; 9]), 500);
        assert!(d.converged, "inoculation game has PNEs");
        assert!(is_pure_nash(&g, &d.profile));
        // Equilibrium has some inoculated nodes and a social cost well
        // below the all-risk profile.
        let inoculated = d
            .profile
            .actions()
            .iter()
            .filter(|&&a| a == INOCULATE)
            .count();
        assert!(inoculated > 0);
        assert!(g.social_cost(&d.profile) < 81.0);
    }

    #[test]
    fn single_node_grid() {
        let g = VirusGame::new(1, 1.0, 2.0);
        let risk = PureProfile::new(vec![RISK]);
        assert!(
            (g.cost(0, &risk) - 2.0).abs() < 1e-12,
            "component of 1, L·1/1"
        );
        let safe = PureProfile::new(vec![INOCULATE]);
        assert_eq!(g.cost(0, &safe), 1.0);
    }
}

//! # ga-games — the concrete games of the paper
//!
//! * [`matching_pennies`](mod@matching_pennies) — the §5 running example, including **Fig. 1**:
//!   matching pennies with a *hidden manipulative strategy* that lifts the
//!   manipulator's expected profit from 0 to +4 against an unsuspecting
//!   mixed-equilibrium player.
//! * [`resource_allocation`] — the §6 **repeated resource allocation**
//!   (RRA) game: `n` unit demands over `b` resources per round, agents
//!   minimize the serviced load; with honest selfishness the paper proves
//!   `Δ(k) ≤ 2n−1` (Lemma 6) and `R(k) ≤ 1 + 2b/k` (Theorem 5).
//! * [`virus_inoculation`] — the Moscibroda–Schmid–Wattenhofer virus
//!   inoculation game the paper cites \[21\] as the origin of the **price of
//!   malice**; used by experiment E5.
//! * [`prisoners_dilemma`](mod@prisoners_dilemma) — the classic complete-information game used in
//!   examples and as the default "rules of the game" in authority demos.
//! * [`load_balancing`] — a Koutsoupias–Papadimitriou-style machine
//!   load-balancing game (the PoA's birthplace \[17, 18\]) for cost-criteria
//!   tests.

pub mod load_balancing;
pub mod matching_pennies;
pub mod prisoners_dilemma;
pub mod resource_allocation;
pub mod virus_inoculation;

pub use matching_pennies::{manipulated_matching_pennies, matching_pennies};
pub use prisoners_dilemma::prisoners_dilemma;

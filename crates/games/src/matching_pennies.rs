//! Matching pennies and the Fig. 1 hidden-manipulation variant.
//!
//! The honest game has no pure equilibrium; its unique mixed equilibrium is
//! uniform for both players with value 0. Fig. 1 of the paper gives agent B
//! a third, *hidden* strategy "Manipulate": indistinguishable from Heads
//! whenever the pennies would match, but paying B `+9` (and costing A `9`)
//! on a mismatch:
//!
//! ```text
//! A\B     Heads      Tails      Manipulate
//! Heads   (+1,−1)    (−1,+1)    (+1,−1)
//! Tails   (−1,+1)    (+1,−1)    (−9,+9)
//! ```
//!
//! "Since agent B knows that agent A plays each of the two strategies with
//! probability 1/2, B plays the manipulated heads strategy with probability
//! 1 … B is able to increase its expected profit from 0 to 4, while A has
//! decreased its expected profit from 0 to −4." (§5.1) —
//! [`fig1_expected_payoffs`] reproduces exactly those numbers.

use ga_game_theory::game::{Game, MatrixGame};
use ga_game_theory::profile::{MixedStrategy, PureProfile};

/// Row/column index of Heads.
pub const HEADS: usize = 0;
/// Row/column index of Tails.
pub const TAILS: usize = 1;
/// Column index of B's hidden Manipulate strategy (Fig. 1 game only).
pub const MANIPULATE: usize = 2;

/// The honest 2×2 matching pennies game (payoffs converted to cost form:
/// agent costs are negated payoffs).
pub fn matching_pennies() -> MatrixGame {
    MatrixGame::from_payoffs(
        "matching-pennies",
        vec![
            vec![(1.0, -1.0), (-1.0, 1.0)],
            vec![(-1.0, 1.0), (1.0, -1.0)],
        ],
    )
}

/// Fig. 1: matching pennies where B hides a manipulative third strategy.
pub fn manipulated_matching_pennies() -> MatrixGame {
    MatrixGame::from_payoffs(
        "matching-pennies-fig1",
        vec![
            vec![(1.0, -1.0), (-1.0, 1.0), (1.0, -1.0)],
            vec![(-1.0, 1.0), (1.0, -1.0), (-9.0, 9.0)],
        ],
    )
}

/// Expected *payoffs* `(A, B)` in the Fig. 1 game when A mixes `a_mix`
/// over {Heads, Tails} and B plays pure strategy `b_action`.
///
/// # Panics
///
/// Panics if `b_action ≥ 3` or `a_mix` does not cover two actions.
pub fn fig1_expected_payoffs(a_mix: &MixedStrategy, b_action: usize) -> (f64, f64) {
    assert_eq!(a_mix.len(), 2, "A has two actions");
    let game = manipulated_matching_pennies();
    assert!(b_action < 3, "B has three actions");
    let mut ea = 0.0;
    let mut eb = 0.0;
    for a_action in 0..2 {
        let p = a_mix.prob(a_action);
        let profile = PureProfile::new(vec![a_action, b_action]);
        // Costs are negated payoffs.
        ea += p * -game.cost(0, &profile);
        eb += p * -game.cost(1, &profile);
    }
    (ea, eb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_game_theory::mixed::support_enumeration;
    use ga_game_theory::nash::pure_nash_equilibria;

    #[test]
    fn honest_game_has_no_pne_and_uniform_mixed_equilibrium() {
        let g = matching_pennies();
        assert!(pure_nash_equilibria(&g).is_empty());
        let eqs = support_enumeration(&g).unwrap();
        assert_eq!(eqs.len(), 1);
        assert!((eqs[0].row.prob(HEADS) - 0.5).abs() < 1e-9);
        assert!((eqs[0].col.prob(HEADS) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fig1_matrix_matches_the_paper() {
        let g = manipulated_matching_pennies();
        // Payoff (A,B) spot checks, remembering cost = -payoff.
        let at = |r: usize, c: usize| {
            let p = PureProfile::new(vec![r, c]);
            (-g.cost(0, &p), -g.cost(1, &p))
        };
        assert_eq!(at(HEADS, HEADS), (1.0, -1.0));
        assert_eq!(at(HEADS, MANIPULATE), (1.0, -1.0), "hidden when matching");
        assert_eq!(at(TAILS, MANIPULATE), (-9.0, 9.0), "the manipulation");
        assert_eq!(at(TAILS, TAILS), (1.0, -1.0));
    }

    #[test]
    fn section_5_1_profit_numbers() {
        let uniform = MixedStrategy::uniform(2);
        // Honest B strategies against uniform A: everyone expects 0.
        for b in [HEADS, TAILS] {
            let (ea, eb) = fig1_expected_payoffs(&uniform, b);
            assert!(ea.abs() < 1e-12 && eb.abs() < 1e-12);
        }
        // Manipulation: B +4, A −4 — the paper's exact numbers.
        let (ea, eb) = fig1_expected_payoffs(&uniform, MANIPULATE);
        assert!((ea - (-4.0)).abs() < 1e-12, "A falls to {ea}");
        assert!((eb - 4.0).abs() < 1e-12, "B rises to {eb}");
    }

    #[test]
    fn manipulate_dominates_heads_for_b() {
        // Against every pure A action, Manipulate is at least as good for B
        // as Heads, strictly better against Tails — why B always plays it.
        let g = manipulated_matching_pennies();
        for a in [HEADS, TAILS] {
            let heads_cost = g.cost(1, &PureProfile::new(vec![a, HEADS]));
            let manip_cost = g.cost(1, &PureProfile::new(vec![a, MANIPULATE]));
            assert!(manip_cost <= heads_cost);
        }
        let heads_cost = g.cost(1, &PureProfile::new(vec![TAILS, HEADS]));
        let manip_cost = g.cost(1, &PureProfile::new(vec![TAILS, MANIPULATE]));
        assert!(manip_cost < heads_cost);
    }
}

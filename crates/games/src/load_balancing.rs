//! Machine load balancing (Koutsoupias–Papadimitriou).
//!
//! The game in which the **price of anarchy** was defined (\[17, 18\]):
//! `n` jobs with weights choose among `m` identical machines; a job's cost
//! is the total weight on its machine; the social objective is the
//! *makespan* (maximum machine load). For identical machines and pure
//! equilibria the PoA is at most `2 − 2/(m+1)`.

use ga_game_theory::game::Game;
use ga_game_theory::profile::PureProfile;

/// The load-balancing game.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadBalancingGame {
    weights: Vec<f64>,
    machines: usize,
}

impl LoadBalancingGame {
    /// Creates the game for jobs of the given weights over `machines`
    /// identical machines.
    ///
    /// # Panics
    ///
    /// Panics if there are no jobs, no machines, or non-positive weights.
    pub fn new(weights: Vec<f64>, machines: usize) -> LoadBalancingGame {
        assert!(!weights.is_empty(), "need at least one job");
        assert!(machines >= 1, "need at least one machine");
        assert!(
            weights.iter().all(|&w| w > 0.0 && w.is_finite()),
            "weights must be positive"
        );
        LoadBalancingGame { weights, machines }
    }

    /// Per-machine loads under `profile`.
    pub fn machine_loads(&self, profile: &PureProfile) -> Vec<f64> {
        let mut loads = vec![0.0; self.machines];
        for (job, &m) in profile.actions().iter().enumerate() {
            loads[m] += self.weights[job];
        }
        loads
    }

    /// The makespan (social objective).
    pub fn makespan(&self, profile: &PureProfile) -> f64 {
        self.machine_loads(profile).into_iter().fold(0.0, f64::max)
    }

    /// A lower bound on the optimal makespan:
    /// `max(total/m, max weight)`.
    pub fn opt_lower_bound(&self) -> f64 {
        let total: f64 = self.weights.iter().sum();
        let heaviest = self.weights.iter().fold(0.0f64, |a, &b| a.max(b));
        (total / self.machines as f64).max(heaviest)
    }

    /// Longest-processing-time greedy assignment — a 4/3-approximation of
    /// the optimum, used as the centralistic baseline.
    pub fn lpt_assignment(&self) -> PureProfile {
        let mut jobs: Vec<usize> = (0..self.weights.len()).collect();
        jobs.sort_by(|&a, &b| {
            self.weights[b]
                .partial_cmp(&self.weights[a])
                .expect("finite weights")
        });
        let mut loads = vec![0.0; self.machines];
        let mut assignment = vec![0; self.weights.len()];
        for job in jobs {
            let m = (0..self.machines)
                .min_by(|&x, &y| loads[x].partial_cmp(&loads[y]).expect("finite"))
                .expect("at least one machine");
            assignment[job] = m;
            loads[m] += self.weights[job];
        }
        PureProfile::new(assignment)
    }
}

impl Game for LoadBalancingGame {
    fn num_agents(&self) -> usize {
        self.weights.len()
    }

    fn num_actions(&self, _agent: usize) -> usize {
        self.machines
    }

    fn cost(&self, agent: usize, profile: &PureProfile) -> f64 {
        self.machine_loads(profile)[profile.action(agent)]
    }

    fn name(&self) -> &str {
        "kp-load-balancing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_game_theory::nash::{best_response_dynamics, is_pure_nash};

    #[test]
    fn loads_and_makespan() {
        let g = LoadBalancingGame::new(vec![2.0, 1.0, 1.0], 2);
        let p = PureProfile::new(vec![0, 1, 1]);
        assert_eq!(g.machine_loads(&p), vec![2.0, 2.0]);
        assert_eq!(g.makespan(&p), 2.0);
        assert_eq!(g.cost(0, &p), 2.0);
    }

    #[test]
    fn best_response_dynamics_converge_to_pne() {
        // Load balancing is a potential game.
        let g = LoadBalancingGame::new(vec![3.0, 2.0, 2.0, 1.0], 2);
        let d = best_response_dynamics(&g, PureProfile::new(vec![0, 0, 0, 0]), 200);
        assert!(d.converged);
        assert!(is_pure_nash(&g, &d.profile));
    }

    #[test]
    fn pne_makespan_within_poa_bound() {
        let g = LoadBalancingGame::new(vec![2.0, 2.0, 1.0, 1.0, 1.0, 1.0], 3);
        let d = best_response_dynamics(&g, PureProfile::new(vec![0; 6]), 500);
        assert!(d.converged);
        let poa_bound = 2.0 - 2.0 / (3.0 + 1.0);
        assert!(g.makespan(&d.profile) <= poa_bound * g.opt_lower_bound() + 1e-9);
    }

    #[test]
    fn lpt_is_near_optimal() {
        let g = LoadBalancingGame::new(vec![5.0, 4.0, 3.0, 3.0, 3.0], 2);
        let lpt = g.lpt_assignment();
        // OPT = 9 (5+4 | 3+3+3); LPT lands on 10 here (5+3+... greedy),
        // within its 4/3 guarantee.
        assert_eq!(g.makespan(&lpt), 10.0);
        assert!(g.makespan(&lpt) <= 4.0 / 3.0 * g.opt_lower_bound() + 1e-9);
        // On an instance where greedy is exact, LPT hits the optimum.
        let g2 = LoadBalancingGame::new(vec![4.0, 3.0, 2.0, 1.0], 2);
        assert_eq!(g2.makespan(&g2.lpt_assignment()), 5.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_weights() {
        LoadBalancingGame::new(vec![1.0, 0.0], 2);
    }
}

//! The repeated resource allocation (RRA) game of §6.
//!
//! Every round, each of `n` agents places a single unit demand on one of
//! `b` resources; at the end of the round all loads become common
//! knowledge. An agent's cost is the (expected) load of the resource it
//! chose, so the one-shot stage game is a symmetric congestion game whose
//! mixed equilibrium "water-fills" the accumulated loads.
//!
//! The paper's claims, all reproduced by experiment E3:
//!
//! * **Lemma 6** — under repeated Nash play the load gap
//!   `Δ(k) = M(k) − min_a ℓ_a(k)` never exceeds `2n − 1`;
//! * **Theorem 5** — the multi-round anarchy cost satisfies
//!   `R(k) ≤ 1 + 2b/k` for every `k`, hence `R → 1`: supervised RRA is
//!   asymptotically optimal.
//!
//! [`RraProcess`] simulates the repeated dynamics; [`RraStageGame`] exposes
//! one round as a [`Game`] so the judicial service can audit choices
//! (a resource pick is honest iff it is a best response — a least-expected-
//! load resource).

use ga_game_theory::game::Game;
use ga_game_theory::profile::PureProfile;
use rand::Rng;

/// The one-shot stage game given accumulated loads.
///
/// Cost of agent `i` choosing resource `a` in profile `π`:
/// `ℓ_a + #{j : π_j = a}` — the backlog plus this round's contention.
#[derive(Debug, Clone, PartialEq)]
pub struct RraStageGame {
    loads: Vec<u64>,
    n: usize,
}

impl RraStageGame {
    /// Creates the stage game for `n` agents over the given loads.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer than 2 resources or zero agents.
    pub fn new(n: usize, loads: Vec<u64>) -> RraStageGame {
        assert!(loads.len() >= 2, "need at least two resources");
        assert!(n > 0, "need at least one agent");
        RraStageGame { loads, n }
    }

    /// The accumulated loads this stage plays against.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }
}

impl Game for RraStageGame {
    fn num_agents(&self) -> usize {
        self.n
    }

    fn num_actions(&self, _agent: usize) -> usize {
        self.loads.len()
    }

    fn cost(&self, agent: usize, profile: &PureProfile) -> f64 {
        let mine = profile.action(agent);
        let contention = profile.actions().iter().filter(|&&a| a == mine).count();
        self.loads[mine] as f64 + contention as f64
    }

    fn name(&self) -> &str {
        "rra-stage"
    }
}

/// The symmetric mixed equilibrium of the stage game: probabilities `x_a`
/// such that every supported resource has equal expected load
/// `1 + (n−1)·x_a + ℓ_a`, computed by water-filling.
///
/// Returns a probability vector over resources.
pub fn equilibrium_weights(n: usize, loads: &[u64]) -> Vec<f64> {
    assert!(!loads.is_empty());
    if loads.len() == 1 {
        return vec![1.0];
    }
    // Sort resource indices by load; grow the support greedily while the
    // water level exceeds the next resource's floor.
    let mut order: Vec<usize> = (0..loads.len()).collect();
    order.sort_by_key(|&a| loads[a]);
    let nm1 = (n.max(2) - 1) as f64;
    let mut support = 1usize;
    let mut level = loads[order[0]] as f64 + nm1; // c − 1 with s = 1
    for s in 2..=order.len() {
        let sum: f64 = order[..s].iter().map(|&a| loads[a] as f64).sum();
        let candidate = (sum + nm1) / s as f64;
        if candidate > loads[order[s - 1]] as f64 {
            support = s;
            level = candidate;
        } else {
            break;
        }
    }
    let mut weights = vec![0.0; loads.len()];
    for &a in &order[..support] {
        weights[a] = (level - loads[a] as f64) / nm1;
    }
    // Normalize away floating-point drift.
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w = (*w / total).max(0.0);
    }
    weights
}

/// How agents choose resources each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RraBehavior {
    /// Sample the symmetric mixed Nash equilibrium of the stage game — the
    /// paper's "repeated Nash equilibrium; independent in every round".
    NashMixed,
    /// Deterministically pick a least-loaded resource (greedy best
    /// response with index tie-break).
    GreedyLeastLoaded,
    /// Adversarial: pile onto the currently most-loaded resource, trying to
    /// blow up `M(k)` (what a malicious coalition does without supervision).
    PileOnMax,
    /// Rule-violating: place this many unit demands per round instead of
    /// one, all on the most-loaded resource. Violates the paper's
    /// "single unit demand" rule and is exactly what the judicial
    /// service's *legitimate action choice* check catches (§3.2 req. 1).
    ExtraDemands(u32),
    /// Disconnected by the executive service: places no demand at all.
    Disconnected,
}

/// The repeated dynamics: loads, round counter and play rule.
#[derive(Debug, Clone)]
pub struct RraProcess {
    n: usize,
    loads: Vec<u64>,
    rounds: u64,
    /// Per-agent behaviors (length `n`).
    behaviors: Vec<RraBehavior>,
}

/// Per-round observables used by the experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RraRoundStats {
    /// Round index `k` (1-based after the round completes).
    pub k: u64,
    /// Maximum load `M(k)`.
    pub max_load: u64,
    /// Minimum load `m(k)`.
    pub min_load: u64,
    /// Load gap `Δ(k)`.
    pub gap: u64,
    /// Optimal max load `OPT(k) = ⌈nk/b⌉`.
    pub opt: u64,
    /// Multi-round anarchy cost `R(k) = M(k)/OPT(k)`.
    pub ratio: f64,
    /// The paper's bound `1 + 2b/k`.
    pub bound: f64,
}

impl RraProcess {
    /// All agents honest-selfish (Nash mixed), zero initial demand — the
    /// paper's asymptotic setting.
    pub fn new(n: usize, b: usize) -> RraProcess {
        RraProcess::with_behaviors(n, b, vec![RraBehavior::NashMixed; n])
    }

    /// Custom per-agent behaviors (length must be `n`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or `b < 2`.
    pub fn with_behaviors(n: usize, b: usize, behaviors: Vec<RraBehavior>) -> RraProcess {
        assert!(b >= 2, "need at least two resources");
        assert_eq!(behaviors.len(), n, "one behavior per agent");
        RraProcess {
            n,
            loads: vec![0; b],
            rounds: 0,
            behaviors,
        }
    }

    /// Number of resources `b`.
    pub fn resources(&self) -> usize {
        self.loads.len()
    }

    /// Current loads.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Rounds played so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Executive intervention: replace an agent's behavior mid-run (e.g.
    /// [`RraBehavior::Disconnected`] after a judicial verdict).
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn set_behavior(&mut self, agent: usize, behavior: RraBehavior) {
        self.behaviors[agent] = behavior;
    }

    /// Plays one round; every agent picks per its behavior, simultaneously
    /// (choices see the *pre-round* loads only). Returns the profile.
    pub fn play_round(&mut self, rng: &mut impl Rng) -> Vec<usize> {
        let weights = equilibrium_weights(self.n, &self.loads);
        let least = self.arg_least();
        let most = self.arg_most();
        let choices: Vec<usize> = self
            .behaviors
            .iter()
            .map(|behavior| match behavior {
                RraBehavior::NashMixed => sample(&weights, rng),
                RraBehavior::GreedyLeastLoaded => least,
                RraBehavior::PileOnMax | RraBehavior::ExtraDemands(_) => most,
                RraBehavior::Disconnected => least, // placeholder; no load
            })
            .collect();
        for (behavior, &c) in self.behaviors.iter().zip(&choices) {
            let units = match behavior {
                RraBehavior::ExtraDemands(u) => u64::from(*u),
                RraBehavior::Disconnected => 0,
                _ => 1,
            };
            self.loads[c] += units;
        }
        self.rounds += 1;
        choices
    }

    /// Plays `k` rounds, returning per-round statistics.
    pub fn play(&mut self, k: u64, rng: &mut impl Rng) -> Vec<RraRoundStats> {
        (0..k)
            .map(|_| {
                self.play_round(rng);
                self.stats()
            })
            .collect()
    }

    /// Current round statistics.
    pub fn stats(&self) -> RraRoundStats {
        let k = self.rounds;
        let max_load = *self.loads.iter().max().expect("b ≥ 2");
        let min_load = *self.loads.iter().min().expect("b ≥ 2");
        let b = self.loads.len() as u64;
        let total: u64 = self.loads.iter().sum();
        let opt = total.div_ceil(b).max(1);
        RraRoundStats {
            k,
            max_load,
            min_load,
            gap: max_load - min_load,
            opt,
            ratio: max_load as f64 / opt as f64,
            bound: 1.0 + 2.0 * b as f64 / k.max(1) as f64,
        }
    }

    fn arg_least(&self) -> usize {
        (0..self.loads.len())
            .min_by_key(|&a| self.loads[a])
            .expect("b ≥ 2")
    }

    fn arg_most(&self) -> usize {
        (0..self.loads.len())
            .max_by_key(|&a| self.loads[a])
            .expect("b ≥ 2")
    }
}

fn sample(weights: &[f64], rng: &mut impl Rng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_game_theory::best_response::is_best_response;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn equilibrium_weights_uniform_on_equal_loads() {
        let w = equilibrium_weights(4, &[0, 0, 0]);
        for &x in &w {
            assert!((x - 1.0 / 3.0).abs() < 1e-9, "{w:?}");
        }
    }

    #[test]
    fn equilibrium_weights_skip_overloaded_resource() {
        // Resource 2 is so loaded nobody should touch it.
        let w = equilibrium_weights(3, &[0, 0, 100]);
        assert_eq!(w[2], 0.0, "{w:?}");
        assert!((w[0] - 0.5).abs() < 1e-9);
        assert!((w[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn equilibrium_weights_tilt_toward_lighter_resource() {
        let w = equilibrium_weights(5, &[0, 2]);
        assert!(w[0] > w[1], "{w:?}");
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn equilibrium_equalizes_expected_loads_on_support() {
        let n = 6;
        let loads = [3u64, 5, 4, 9];
        let w = equilibrium_weights(n, &loads);
        let nm1 = (n - 1) as f64;
        let levels: Vec<f64> = loads
            .iter()
            .zip(&w)
            .filter(|(_, &x)| x > 1e-9)
            .map(|(&l, &x)| 1.0 + nm1 * x + l as f64)
            .collect();
        for pair in levels.windows(2) {
            assert!((pair[0] - pair[1]).abs() < 1e-6, "{levels:?}");
        }
    }

    #[test]
    fn lemma_6_gap_bound_holds_over_long_runs() {
        let (n, b) = (5, 3);
        let mut rra = RraProcess::new(n, b);
        let mut rng = StdRng::seed_from_u64(1);
        for stats in rra.play(2000, &mut rng) {
            assert!(
                stats.gap < 2 * n as u64,
                "Δ({}) = {} > 2n−1",
                stats.k,
                stats.gap
            );
        }
    }

    #[test]
    fn theorem_5_ratio_bound_holds_and_converges() {
        let (n, b) = (4, 4);
        let mut rra = RraProcess::new(n, b);
        let mut rng = StdRng::seed_from_u64(2);
        let stats = rra.play(3000, &mut rng);
        for s in &stats {
            assert!(
                s.ratio <= s.bound + 1e-9,
                "R({}) = {} > {}",
                s.k,
                s.ratio,
                s.bound
            );
        }
        let last = stats.last().unwrap();
        assert!(
            last.ratio < 1.05,
            "R(3000) = {} should approach 1",
            last.ratio
        );
    }

    #[test]
    fn greedy_behavior_also_balances() {
        let mut rra = RraProcess::with_behaviors(4, 2, vec![RraBehavior::GreedyLeastLoaded; 4]);
        let mut rng = StdRng::seed_from_u64(3);
        rra.play(100, &mut rng);
        let s = rra.stats();
        // All four agents pick the same least-loaded bin per round → gap
        // oscillates but stays bounded by n.
        assert!(s.gap <= 4, "gap={}", s.gap);
    }

    #[test]
    fn pile_on_max_alone_cannot_break_the_envelope() {
        // A unit-demand adversary still obeys the rules; the honest Nash
        // agents keep absorbing the imbalance, so the gap stays bounded.
        let n = 4;
        let behaviors = vec![
            RraBehavior::NashMixed,
            RraBehavior::NashMixed,
            RraBehavior::PileOnMax,
            RraBehavior::PileOnMax,
        ];
        let mut rra = RraProcess::with_behaviors(n, 2, behaviors);
        let mut rng = StdRng::seed_from_u64(4);
        rra.play(200, &mut rng);
        assert!(rra.stats().gap <= 3 * n as u64, "gap={}", rra.stats().gap);
    }

    #[test]
    fn extra_demand_cheaters_break_the_envelope() {
        // Violating the single-unit rule is what actually destroys
        // Lemma 6's Δ(k) ≤ 2n−1 envelope — and what the judicial service's
        // legitimate-action check exists to stop.
        let n = 4;
        let behaviors = vec![
            RraBehavior::NashMixed,
            RraBehavior::NashMixed,
            RraBehavior::NashMixed,
            RraBehavior::ExtraDemands(5),
        ];
        let mut rra = RraProcess::with_behaviors(n, 2, behaviors);
        let mut rng = StdRng::seed_from_u64(4);
        rra.play(200, &mut rng);
        let gap = rra.stats().gap;
        assert!(
            gap > 2 * n as u64 - 1,
            "cheating blows past Lemma 6's envelope: gap={gap}"
        );
    }

    #[test]
    fn stage_game_costs_count_contention() {
        let g = RraStageGame::new(3, vec![10, 0]);
        let p = PureProfile::new(vec![1, 1, 0]);
        assert_eq!(g.cost(0, &p), 2.0, "load 0 + two pickers");
        assert_eq!(g.cost(2, &p), 11.0, "load 10 + alone");
    }

    #[test]
    fn stage_game_best_response_is_least_expected_load() {
        let g = RraStageGame::new(2, vec![5, 0]);
        // Other agent on resource 1: picking 1 costs 0+2, picking 0 costs
        // 5+1 → resource 1 is still the best response.
        let p = PureProfile::new(vec![1, 1]);
        assert!(is_best_response(&g, 0, &p));
        let q = PureProfile::new(vec![0, 1]);
        assert!(!is_best_response(&g, 0, &q));
    }

    #[test]
    fn opt_is_ceiling_of_average() {
        let mut rra = RraProcess::new(3, 2);
        let mut rng = StdRng::seed_from_u64(5);
        rra.play_round(&mut rng);
        // 3 demands over 2 bins → OPT = 2.
        assert_eq!(rra.stats().opt, 2);
    }
}

//! The reference game-authority engine.
//!
//! Runs the complete play protocol of §3.3 — commit, reveal, audit,
//! punish, publish — with real cryptography but abstracted transport (the
//! distributed transport lives in [`distributed`](crate::distributed)).
//! This is the engine behind the paper's *reduced price of malice* claims:
//! experiments E2 and E5 run it with and without manipulators and compare
//! the honest agents' costs.
//!
//! Per play:
//!
//! 1. every active agent picks an action (per its
//!    [`Behavior`]) and publishes a commitment;
//! 2. after all commitments are in, agents reveal;
//! 3. the judicial service audits (legitimacy, opening, best response /
//!    claimed support);
//! 4. the executive service punishes the fouls and publishes the outcome
//!    into the hash-chained log;
//! 5. every `epoch_len` plays, mixed strategies undergo the §5.3 seed
//!    audit.
//!
//! A play is *void* (no outcome, zero costs) when some agent that should
//! have played failed to produce a legal revealed action — the honest
//! majority then plays the next round against the last valid outcome.

use ga_crypto::commitment::Commitment;
use ga_crypto::prg::{CommittedPrg, Prg};
use ga_game_theory::best_response::best_response;
use ga_game_theory::game::Game;
use ga_game_theory::profile::PureProfile;

use crate::agent::{Behavior, BehaviorKind};
use crate::executive::{Executive, Punishment};
use crate::judicial::{action_bytes, audit_epoch, audit_play_with, Submission, Verdict};

/// Configuration of the reference engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuthorityConfig {
    /// Punishment scheme the executive applies.
    pub punishment: Punishment,
    /// Mixed-strategy seed audits run every this many plays.
    pub epoch_len: u64,
    /// Master seed for all agent randomness (nonces, PRG seeds).
    pub seed: u64,
    /// Whether the judicial service audits at all — `false` models the
    /// unsupervised baseline the PoM experiments compare against.
    pub audits_enabled: bool,
    /// Whether mixed strategies get the per-play support check, or only
    /// the deferred end-of-epoch seed audit (§5.3's efficiency variant) —
    /// the E8 ablation's knob.
    pub per_play_support_audit: bool,
}

impl Default for AuthorityConfig {
    fn default() -> Self {
        AuthorityConfig {
            punishment: Punishment::Disconnect,
            epoch_len: 16,
            seed: 0,
            audits_enabled: true,
            per_play_support_audit: true,
        }
    }
}

/// What one play produced.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Play number, starting at 0.
    pub round: u64,
    /// Revealed actions (None: inactive, silent, or unrevealed).
    pub actions: Vec<Option<usize>>,
    /// Judicial verdicts for this play.
    pub verdicts: Vec<Verdict>,
    /// Agents newly punished this play.
    pub punished: Vec<usize>,
    /// The play outcome — `None` when the play was void.
    pub outcome: Option<PureProfile>,
    /// Per-agent raw game costs (0 for void plays and inactive agents).
    pub costs: Vec<f64>,
}

impl RoundReport {
    /// Sum of the costs of agents for which `honest[i]` holds — the
    /// paper's social cost (§2 counts honest agents only).
    pub fn honest_social_cost(&self, honest: &[bool]) -> f64 {
        self.costs
            .iter()
            .zip(honest)
            .filter(|(_, &h)| h)
            .map(|(c, _)| c)
            .sum()
    }
}

/// The reference game authority.
pub struct Authority<'g> {
    game: &'g dyn Game,
    behaviors: Vec<Behavior>,
    executive: Executive,
    config: AuthorityConfig,
    /// Per-agent committed PRG driving *auditable* randomness.
    prgs: Vec<CommittedPrg>,
    /// Public seed commitments published before play started.
    seed_commitments: Vec<Commitment>,
    /// Per-agent nonce stream for commitments (separate from the committed
    /// PRG: nonces are never audited, samples are).
    nonce_prgs: Vec<Prg>,
    /// Per-agent transcript for the epoch audit.
    transcripts: Vec<Vec<(Vec<f64>, usize)>>,
    prev_outcome: Option<PureProfile>,
    round: u64,
}

impl std::fmt::Debug for Authority<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Authority")
            .field("game", &self.game.name())
            .field("round", &self.round)
            .finish_non_exhaustive()
    }
}

impl<'g> Authority<'g> {
    /// Sets up the authority for `game` with one behaviour per agent.
    ///
    /// # Panics
    ///
    /// Panics if the behaviour count differs from the game's agent count.
    pub fn new(game: &'g dyn Game, behaviors: Vec<Behavior>, config: AuthorityConfig) -> Self {
        assert_eq!(behaviors.len(), game.num_agents(), "one behavior per agent");
        let n = behaviors.len();
        let mut prgs = Vec::with_capacity(n);
        let mut seed_commitments = Vec::with_capacity(n);
        let mut nonce_prgs = Vec::with_capacity(n);
        for i in 0..n {
            let mut boot = Prg::from_seed_material(b"ga-authority-agent", config.seed ^ i as u64);
            let seed = boot.next_block();
            let nonce = boot.next_block();
            let cp = CommittedPrg::new(seed, nonce);
            seed_commitments.push(cp.commitment());
            prgs.push(cp);
            nonce_prgs.push(Prg::from_seed_material(
                b"ga-authority-nonce",
                config.seed ^ (i as u64) << 8,
            ));
        }
        Authority {
            game,
            behaviors,
            executive: Executive::new(n, config.punishment),
            config,
            prgs,
            seed_commitments,
            nonce_prgs,
            transcripts: vec![Vec::new(); n],
            prev_outcome: None,
            round: 0,
        }
    }

    /// The executive ledger (punishments, fines, the outcome log).
    pub fn executive(&self) -> &Executive {
        &self.executive
    }

    /// The outcome of the last non-void play.
    pub fn previous_outcome(&self) -> Option<&PureProfile> {
        self.prev_outcome.as_ref()
    }

    /// Plays played so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Which agents count as honest for social-cost purposes.
    pub fn honest_flags(&self) -> Vec<bool> {
        self.behaviors.iter().map(Behavior::is_honest).collect()
    }

    /// Runs one play of the protocol.
    pub fn play_round(&mut self) -> RoundReport {
        let n = self.behaviors.len();
        let active: Vec<bool> = (0..n).map(|i| self.executive.is_active(i)).collect();

        // Phase 1+2: per-agent action choice, commitment, reveal.
        let mut submissions = Vec::with_capacity(n);
        let mut actions: Vec<Option<usize>> = vec![None; n];
        for i in 0..n {
            if !active[i] {
                submissions.push(Submission {
                    commitment: None,
                    reveal: None,
                    claimed_strategy: None,
                });
                continue;
            }
            let (submission, action) = self.submit(i);
            actions[i] = action;
            submissions.push(submission);
        }

        // Phase 3: judicial audit.
        let punished_flags: Vec<bool> = active.iter().map(|a| !a).collect();
        let mut verdicts = if self.config.audits_enabled {
            audit_play_with(
                self.game,
                self.prev_outcome.as_ref(),
                &submissions,
                &punished_flags,
                self.config.per_play_support_audit,
            )
        } else {
            (0..n)
                .map(|i| {
                    if active[i] {
                        Verdict::Honest
                    } else {
                        Verdict::AlreadyPunished
                    }
                })
                .collect()
        };

        // Epoch-end mixed audit (§5.3).
        if self.config.audits_enabled && (self.round + 1).is_multiple_of(self.config.epoch_len) {
            for i in 0..n {
                if !active[i] || !verdicts[i].is_honest() {
                    continue;
                }
                if self.behaviors[i].claimed_strategy().is_some() {
                    let v = audit_epoch(
                        self.seed_commitments[i],
                        self.prgs[i].reveal(),
                        &self.transcripts[i],
                    );
                    if !v.is_honest() {
                        verdicts[i] = v;
                    }
                }
            }
        }

        // Phase 4: executive punishment + outcome publication.
        let punished = self.executive.apply_verdicts(&verdicts);

        // A play is valid when every agent active at its start revealed a
        // legal action.
        let outcome = if (0..n)
            .all(|i| !active[i] || matches!(actions[i], Some(a) if a < self.game.num_actions(i)))
            && active.iter().all(|&a| a)
        {
            Some(PureProfile::new(
                actions.iter().map(|a| a.expect("all revealed")).collect(),
            ))
        } else {
            None
        };

        let costs: Vec<f64> = match &outcome {
            Some(profile) => (0..n).map(|i| self.game.cost(i, profile)).collect(),
            None => vec![0.0; n],
        };

        if let Some(profile) = &outcome {
            self.executive.publish_outcome(self.round, profile);
            self.prev_outcome = Some(profile.clone());
        }

        let report = RoundReport {
            round: self.round,
            actions,
            verdicts,
            punished,
            outcome,
            costs,
        };
        self.round += 1;
        report
    }

    /// Runs `rounds` plays, returning all reports.
    pub fn play(&mut self, rounds: u64) -> Vec<RoundReport> {
        (0..rounds).map(|_| self.play_round()).collect()
    }

    /// Builds agent `i`'s submission for this play.
    fn submit(&mut self, i: usize) -> (Submission, Option<usize>) {
        let kind = self.behaviors[i].kind().clone();
        let claimed = self.behaviors[i].claimed_strategy().map(<[f64]>::to_vec);
        match kind {
            BehaviorKind::HonestPure { initial } => {
                let action = match &self.prev_outcome {
                    Some(prev) => best_response(self.game, i, prev),
                    None => initial.min(self.game.num_actions(i) - 1),
                };
                (self.honest_submission(i, action, None), Some(action))
            }
            BehaviorKind::HonestMixed { strategy } => {
                let action = self.prgs[i].sample(&strategy);
                self.transcripts[i].push((strategy.clone(), action));
                (
                    self.honest_submission(i, action, Some(strategy)),
                    Some(action),
                )
            }
            BehaviorKind::HiddenManipulator {
                claimed: c,
                manipulation,
            } => {
                // Burns a PRG sample to look busy, then plays the hidden
                // strategy; the transcript records what it *claims*.
                let _ = self.prgs[i].sample(&pad(&c, self.game.num_actions(i)));
                self.transcripts[i].push((c.clone(), manipulation));
                (
                    self.honest_submission(i, manipulation, Some(c)),
                    Some(manipulation),
                )
            }
            BehaviorKind::SubtleManipulator {
                claimed: c,
                preferred,
            } => {
                let sampled = self.prgs[i].sample(&pad(&c, self.game.num_actions(i)));
                let action = preferred.min(self.game.num_actions(i) - 1);
                // Claims the sample was `action` — the seed replay will say
                // otherwise at epoch end.
                self.transcripts[i].push((c.clone(), action));
                let _ = sampled;
                (self.honest_submission(i, action, Some(c)), Some(action))
            }
            BehaviorKind::Equivocator { reveal, commit } => {
                let nonce = self.next_nonce(i);
                let (c, o) = Commitment::commit(&action_bytes(commit), nonce);
                (
                    Submission {
                        commitment: Some(c),
                        reveal: Some((reveal, o)),
                        claimed_strategy: claimed,
                    },
                    Some(reveal),
                )
            }
            BehaviorKind::NoReveal { action } => {
                let nonce = self.next_nonce(i);
                let (c, _) = Commitment::commit(&action_bytes(action), nonce);
                (
                    Submission {
                        commitment: Some(c),
                        reveal: None,
                        claimed_strategy: claimed,
                    },
                    None,
                )
            }
            BehaviorKind::Silent => (
                Submission {
                    commitment: None,
                    reveal: None,
                    claimed_strategy: claimed,
                },
                None,
            ),
            BehaviorKind::Illegal { action } => {
                (self.honest_submission(i, action, claimed), Some(action))
            }
        }
    }

    fn honest_submission(
        &mut self,
        i: usize,
        action: usize,
        claimed: Option<Vec<f64>>,
    ) -> Submission {
        let nonce = self.next_nonce(i);
        let (c, o) = Commitment::commit(&action_bytes(action), nonce);
        Submission {
            commitment: Some(c),
            reveal: Some((action, o)),
            claimed_strategy: claimed,
        }
    }

    fn next_nonce(&mut self, i: usize) -> [u8; 32] {
        self.nonce_prgs[i].next_block()
    }
}

/// Pads a claimed strategy to the game's action count (missing weights are
/// zero) so sampling never indexes out of range.
fn pad(weights: &[f64], len: usize) -> Vec<f64> {
    let mut w = weights.to_vec();
    w.resize(len.max(weights.len()), 0.0);
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_games::matching_pennies::{manipulated_matching_pennies, MANIPULATE};
    use ga_games::prisoners_dilemma;

    #[test]
    fn honest_pure_agents_converge_to_equilibrium_play() {
        let g = prisoners_dilemma();
        let mut auth = Authority::new(
            &g,
            vec![Behavior::honest_pure(0), Behavior::honest_pure(0)],
            AuthorityConfig::default(),
        );
        let reports = auth.play(5);
        for r in &reports {
            assert!(r.verdicts.iter().all(|v| v.is_honest()), "{:?}", r.verdicts);
            assert!(r.outcome.is_some());
        }
        // After round 0, best responses lock into (D, D).
        assert_eq!(
            reports[2].outcome.as_ref().unwrap(),
            &PureProfile::new(vec![1, 1])
        );
    }

    #[test]
    fn hidden_manipulator_caught_and_disconnected_immediately() {
        let g = manipulated_matching_pennies();
        let mut auth = Authority::new(
            &g,
            vec![
                Behavior::honest_mixed(vec![0.5, 0.5]),
                Behavior::hidden_manipulator(vec![0.5, 0.5, 0.0], MANIPULATE),
            ],
            AuthorityConfig::default(),
        );
        let r0 = auth.play_round();
        assert_eq!(r0.verdicts[1], Verdict::OutsideClaimedSupport);
        assert_eq!(r0.punished, vec![1]);
        assert!(!auth.executive().is_active(1));
        // Subsequent plays are void (a 2-player game cannot proceed), so
        // the honest agent stops bleeding utility.
        let r1 = auth.play_round();
        assert!(r1.outcome.is_none());
        assert_eq!(r1.costs[0], 0.0);
    }

    #[test]
    fn subtle_manipulator_caught_at_epoch_end() {
        let g = manipulated_matching_pennies();
        let config = AuthorityConfig {
            epoch_len: 8,
            ..AuthorityConfig::default()
        };
        let mut auth = Authority::new(
            &g,
            vec![
                Behavior::honest_mixed(vec![0.5, 0.5]),
                // Claims uniform over H/T but always reveals Heads.
                Behavior::subtle_manipulator(vec![0.5, 0.5], 0),
            ],
            config,
        );
        let reports = auth.play(8);
        // Before the epoch ends, the support audit passes (Heads is in the
        // claimed support) — the manipulation is invisible per-round.
        for r in &reports[..7] {
            assert!(r.verdicts[1].is_honest(), "{:?}", r.verdicts);
        }
        // Epoch end: the seed replay exposes the substitution (it can only
        // escape if all eight honest samples were Heads — probability
        // 1/256, excluded by the fixed seed).
        assert_eq!(reports[7].verdicts[1], Verdict::SeedMismatch);
        assert!(!auth.executive().is_active(1));
    }

    #[test]
    fn unsupervised_baseline_never_punishes() {
        let g = manipulated_matching_pennies();
        let config = AuthorityConfig {
            audits_enabled: false,
            ..AuthorityConfig::default()
        };
        let mut auth = Authority::new(
            &g,
            vec![
                Behavior::honest_mixed(vec![0.5, 0.5]),
                Behavior::hidden_manipulator(vec![0.5, 0.5, 0.0], MANIPULATE),
            ],
            config,
        );
        let reports = auth.play(50);
        assert!(reports.iter().all(|r| r.punished.is_empty()));
        // The honest agent keeps paying: average cost strictly positive
        // (expected +4 per round in cost terms).
        let total: f64 = reports.iter().map(|r| r.costs[0]).sum();
        assert!(total > 0.0, "A bleeds {total}");
    }

    #[test]
    fn equivocator_and_no_reveal_are_fouls() {
        let g = prisoners_dilemma();
        let mut auth = Authority::new(
            &g,
            vec![Behavior::equivocator(0, 1), Behavior::no_reveal(1)],
            AuthorityConfig::default(),
        );
        let r = auth.play_round();
        assert_eq!(r.verdicts[0], Verdict::BadOpening);
        assert_eq!(r.verdicts[1], Verdict::MissingReveal);
        assert!(r.outcome.is_none(), "void play");
    }

    #[test]
    fn fine_scheme_keeps_agents_playing() {
        let g = prisoners_dilemma();
        let config = AuthorityConfig {
            punishment: Punishment::Fine(5.0),
            ..AuthorityConfig::default()
        };
        let mut auth = Authority::new(
            &g,
            vec![Behavior::honest_pure(1), Behavior::equivocator(0, 1)],
            config,
        );
        auth.play(3);
        assert!(auth.executive().is_active(1));
        assert_eq!(auth.executive().fine(1), 15.0);
    }

    #[test]
    fn outcome_log_verifies_after_many_plays() {
        let g = prisoners_dilemma();
        let mut auth = Authority::new(
            &g,
            vec![Behavior::honest_pure(0), Behavior::honest_pure(1)],
            AuthorityConfig::default(),
        );
        auth.play(10);
        assert!(auth.executive().log().verify().is_ok());
        assert_eq!(auth.executive().log().len(), 10);
    }

    #[test]
    fn honest_social_cost_counts_only_honest() {
        let g = prisoners_dilemma();
        let mut auth = Authority::new(
            &g,
            vec![Behavior::honest_pure(1), Behavior::honest_pure(1)],
            AuthorityConfig::default(),
        );
        let r = auth.play_round();
        assert_eq!(r.honest_social_cost(&[true, true]), 4.0);
        assert_eq!(r.honest_social_cost(&[true, false]), 2.0);
    }
}

//! Agent behaviours for the reference engine.
//!
//! The paper's population is "honest but selfish" agents plus a Byzantine
//! minority. [`Behavior`] captures both: the honest strategies the
//! middleware certifies, and the attack repertoire the judicial service
//! must catch — each [`BehaviorKind`] maps onto the verdict that exposes
//! it.

/// What an agent does each play.
#[derive(Debug, Clone, PartialEq)]
pub enum BehaviorKind {
    /// Honest pure strategist: best response to the previous outcome
    /// (`initial` before any outcome exists) — exactly §3.3's honest agent.
    HonestPure {
        /// Action for the first play.
        initial: usize,
    },
    /// Honest mixed strategist: samples the claimed strategy from a
    /// committed PRG (§5.3).
    HonestMixed {
        /// The mixed strategy, as action weights.
        strategy: Vec<f64>,
    },
    /// Fig. 1's manipulator: claims `claimed` but always plays
    /// `manipulation`. Caught by the support audit
    /// ([`Verdict::OutsideClaimedSupport`](crate::judicial::Verdict)).
    HiddenManipulator {
        /// The strategy it claims to play.
        claimed: Vec<f64>,
        /// The hidden strategy it actually plays.
        manipulation: usize,
    },
    /// The subtle manipulator: samples its committed PRG honestly but
    /// overrides the outcome with `preferred` whenever they differ. Caught
    /// by the end-of-epoch seed audit
    /// ([`Verdict::SeedMismatch`](crate::judicial::Verdict)).
    SubtleManipulator {
        /// The strategy it claims (and whose support it stays inside).
        claimed: Vec<f64>,
        /// The action it substitutes for honest samples.
        preferred: usize,
    },
    /// Commits to one action, reveals another
    /// ([`Verdict::BadOpening`](crate::judicial::Verdict)).
    Equivocator {
        /// The action it actually reveals.
        reveal: usize,
        /// The action it commits to.
        commit: usize,
    },
    /// Commits but never reveals
    /// ([`Verdict::MissingReveal`](crate::judicial::Verdict)).
    NoReveal {
        /// The action it commits to (and hides forever).
        action: usize,
    },
    /// Sends nothing at all
    /// ([`Verdict::MissingCommitment`](crate::judicial::Verdict)).
    Silent,
    /// Plays an out-of-range action
    /// ([`Verdict::IllegalAction`](crate::judicial::Verdict)).
    Illegal {
        /// The illegal action index.
        action: usize,
    },
}

/// An agent's behaviour, with constructors for every kind.
#[derive(Debug, Clone, PartialEq)]
pub struct Behavior {
    kind: BehaviorKind,
}

impl Behavior {
    /// Honest pure strategist (best-responder).
    pub fn honest_pure(initial: usize) -> Behavior {
        Behavior {
            kind: BehaviorKind::HonestPure { initial },
        }
    }

    /// Honest mixed strategist with PRG-committed sampling.
    pub fn honest_mixed(strategy: Vec<f64>) -> Behavior {
        Behavior {
            kind: BehaviorKind::HonestMixed { strategy },
        }
    }

    /// Fig. 1 manipulator: claims `claimed`, always plays `manipulation`.
    pub fn hidden_manipulator(claimed: Vec<f64>, manipulation: usize) -> Behavior {
        Behavior {
            kind: BehaviorKind::HiddenManipulator {
                claimed,
                manipulation,
            },
        }
    }

    /// Seed-cheating manipulator staying inside the claimed support.
    pub fn subtle_manipulator(claimed: Vec<f64>, preferred: usize) -> Behavior {
        Behavior {
            kind: BehaviorKind::SubtleManipulator { claimed, preferred },
        }
    }

    /// Commit/reveal equivocator.
    pub fn equivocator(commit: usize, reveal: usize) -> Behavior {
        Behavior {
            kind: BehaviorKind::Equivocator { reveal, commit },
        }
    }

    /// Commits but never reveals.
    pub fn no_reveal(action: usize) -> Behavior {
        Behavior {
            kind: BehaviorKind::NoReveal { action },
        }
    }

    /// Completely silent.
    pub fn silent() -> Behavior {
        Behavior {
            kind: BehaviorKind::Silent,
        }
    }

    /// Plays an illegal action index.
    pub fn illegal(action: usize) -> Behavior {
        Behavior {
            kind: BehaviorKind::Illegal { action },
        }
    }

    /// The behaviour kind.
    pub fn kind(&self) -> &BehaviorKind {
        &self.kind
    }

    /// Whether this behaviour is one of the honest ones.
    pub fn is_honest(&self) -> bool {
        matches!(
            self.kind,
            BehaviorKind::HonestPure { .. } | BehaviorKind::HonestMixed { .. }
        )
    }

    /// The mixed strategy this behaviour *claims*, if it claims one.
    pub fn claimed_strategy(&self) -> Option<&[f64]> {
        match &self.kind {
            BehaviorKind::HonestMixed { strategy } => Some(strategy),
            BehaviorKind::HiddenManipulator { claimed, .. } => Some(claimed),
            BehaviorKind::SubtleManipulator { claimed, .. } => Some(claimed),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honesty_classification() {
        assert!(Behavior::honest_pure(0).is_honest());
        assert!(Behavior::honest_mixed(vec![0.5, 0.5]).is_honest());
        assert!(!Behavior::hidden_manipulator(vec![0.5, 0.5], 2).is_honest());
        assert!(!Behavior::silent().is_honest());
        assert!(!Behavior::equivocator(0, 1).is_honest());
    }

    #[test]
    fn claimed_strategies() {
        assert_eq!(
            Behavior::honest_mixed(vec![0.3, 0.7]).claimed_strategy(),
            Some([0.3, 0.7].as_slice())
        );
        assert_eq!(Behavior::honest_pure(0).claimed_strategy(), None);
        assert!(Behavior::subtle_manipulator(vec![0.5, 0.5], 0)
            .claimed_strategy()
            .is_some());
    }
}

//! The legislative service: electing the rules of the game.
//!
//! §3.1: "A key decision that the legislative service makes is about the
//! rules of the game … the service is required to guarantee coherent game
//! settings, i.e., all honest agents agree on the game Γ." The paper
//! delegates the mechanics to manipulation-resilient voting (\[14\],
//! Elkind–Lipmaa); here we provide the deterministic tallies (plurality,
//! Borda, instant-runoff) over a ballot set that the distributed layer
//! first pushes through Byzantine agreement — coherence comes from
//! agreement, manipulation resistance from commit–reveal balloting plus
//! the hybrid-rule structure.

use ga_agreement::consensus::OmConsensus;
use ga_agreement::executor::{no_tamper, run_pure_instances};
use ga_crypto::commitment::{Commitment, Nonce, Opening};
use ga_crypto::sha256::Sha256;

use crate::AuthorityError;

/// A voter's ranking of candidate games, best first. Must be a permutation
/// of a subset of candidates; unlisted candidates rank below listed ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ballot(Vec<usize>);

impl Ballot {
    /// Creates a ballot from a ranking (best candidate first).
    pub fn new(ranking: Vec<usize>) -> Ballot {
        Ballot(ranking)
    }

    /// The ranking, best first.
    pub fn ranking(&self) -> &[usize] {
        &self.0
    }

    /// Validates against the candidate count: indices in range, no
    /// duplicates, not empty.
    pub fn validate(&self, num_candidates: usize) -> Result<(), AuthorityError> {
        if self.0.is_empty() {
            return Err(AuthorityError::MalformedBallot("empty ranking".into()));
        }
        let mut seen = vec![false; num_candidates];
        for &c in &self.0 {
            if c >= num_candidates {
                return Err(AuthorityError::MalformedBallot(format!(
                    "candidate {c} out of range"
                )));
            }
            if seen[c] {
                return Err(AuthorityError::MalformedBallot(format!(
                    "candidate {c} ranked twice"
                )));
            }
            seen[c] = true;
        }
        Ok(())
    }
}

/// The voting rule in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VotingRule {
    /// Most first-choice votes wins.
    Plurality,
    /// Positional scoring: rank `r` of `m` candidates scores `m − 1 − r`.
    Borda,
    /// Instant-runoff: repeatedly eliminate the candidate with fewest
    /// first-choice votes.
    InstantRunoff,
}

/// Tallies valid ballots under `rule`; invalid ballots are discarded
/// (they would have been rejected at agreement time). Ties break toward
/// the lower candidate index, deterministically — all honest agents reach
/// the same winner from the same agreed ballot set.
///
/// # Errors
///
/// [`AuthorityError::EmptyElection`] when there are no candidates or no
/// valid ballots.
pub fn tally(
    rule: VotingRule,
    ballots: &[Ballot],
    num_candidates: usize,
) -> Result<usize, AuthorityError> {
    if num_candidates == 0 {
        return Err(AuthorityError::EmptyElection);
    }
    let valid: Vec<&Ballot> = ballots
        .iter()
        .filter(|b| b.validate(num_candidates).is_ok())
        .collect();
    if valid.is_empty() {
        return Err(AuthorityError::EmptyElection);
    }
    let winner = match rule {
        VotingRule::Plurality => plurality(&valid, num_candidates),
        VotingRule::Borda => borda(&valid, num_candidates),
        VotingRule::InstantRunoff => instant_runoff(&valid, num_candidates),
    };
    Ok(winner)
}

fn plurality(ballots: &[&Ballot], m: usize) -> usize {
    let mut first = vec![0u64; m];
    for b in ballots {
        first[b.ranking()[0]] += 1;
    }
    argmax(&first)
}

fn borda(ballots: &[&Ballot], m: usize) -> usize {
    let mut score = vec![0u64; m];
    for b in ballots {
        for (rank, &c) in b.ranking().iter().enumerate() {
            score[c] += (m - 1 - rank) as u64;
        }
        // Unranked candidates score 0 — strictly below every ranked one
        // only if the ballot is partial; fine for a deterministic rule.
    }
    argmax(&score)
}

fn instant_runoff(ballots: &[&Ballot], m: usize) -> usize {
    let mut eliminated = vec![false; m];
    loop {
        // First choices among the non-eliminated.
        let mut first = vec![0u64; m];
        let mut total = 0u64;
        for b in ballots {
            if let Some(&c) = b.ranking().iter().find(|&&c| !eliminated[c]) {
                first[c] += 1;
                total += 1;
            }
        }
        if total == 0 {
            // All ballots exhausted: winner is the lowest-index survivor.
            return (0..m).find(|&c| !eliminated[c]).unwrap_or(0);
        }
        // Majority?
        if let Some(winner) = (0..m).find(|&c| !eliminated[c] && 2 * first[c] > total) {
            return winner;
        }
        let survivors: Vec<usize> = (0..m).filter(|&c| !eliminated[c]).collect();
        if survivors.len() == 1 {
            return survivors[0];
        }
        // Eliminate the weakest survivor (highest index loses the tie so
        // elimination also has a deterministic order).
        let weakest = *survivors
            .iter()
            .rev()
            .min_by_key(|&&c| first[c])
            .expect("survivors nonempty");
        eliminated[weakest] = true;
    }
}

/// Canonical byte encoding of a ballot (for commitments and digests).
pub fn ballot_bytes(ballot: &Ballot) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(ballot.ranking().len() * 8 + 8);
    bytes.extend_from_slice(&(ballot.ranking().len() as u64).to_be_bytes());
    for &c in ballot.ranking() {
        bytes.extend_from_slice(&(c as u64).to_be_bytes());
    }
    bytes
}

/// A sealed (committed) ballot: published before anyone reveals, so no
/// voter can condition its ranking on the others' — the commit–reveal leg
/// of manipulation-resistant balloting (\[14\]'s hybrid protocols pair
/// this with the voting rule's own resistance).
#[derive(Debug, Clone)]
pub struct SealedBallot {
    commitment: Commitment,
}

impl SealedBallot {
    /// Seals `ballot` under `nonce`; returns the public seal and the
    /// private opening to publish at reveal time.
    pub fn seal(ballot: &Ballot, nonce: Nonce) -> (SealedBallot, Opening) {
        let (commitment, opening) = Commitment::commit(&ballot_bytes(ballot), nonce);
        (SealedBallot { commitment }, opening)
    }

    /// Verifies a revealed ballot against the seal.
    pub fn verify(&self, ballot: &Ballot, opening: &Opening) -> bool {
        self.commitment
            .verify(&ballot_bytes(ballot), opening)
            .is_ok()
    }
}

/// The outcome of a distributed election.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElectionOutcome {
    /// The elected candidate.
    pub winner: usize,
    /// Voters whose reveals failed agreement/verification and were
    /// discarded (candidates for judicial attention).
    pub discarded_voters: Vec<usize>,
}

/// Runs a coherent election among `n` voters with up to `f` Byzantine:
/// every voter's ballot digest goes through Byzantine agreement
/// (interactive consistency), reveals are verified against the *agreed*
/// digests, and the surviving ballots are tallied deterministically — so
/// every honest voter computes the same winner (§3.1's "coherent game
/// settings").
///
/// `reveals[i]` is voter `i`'s revealed ballot (`None` for voters that
/// never revealed).
///
/// # Errors
///
/// [`AuthorityError::EmptyElection`] when no valid ballot survives.
///
/// # Panics
///
/// Panics unless `n > 3f` (OM backend) and `reveals.len() == n`.
pub fn distributed_election(
    rule: VotingRule,
    reveals: &[Option<Ballot>],
    num_candidates: usize,
    n: usize,
    f: usize,
) -> Result<ElectionOutcome, AuthorityError> {
    assert_eq!(reveals.len(), n, "one reveal slot per voter");
    // 1. Agree on every voter's ballot digest (0 = "no ballot").
    let digest_of = |b: &Option<Ballot>| -> u64 {
        match b {
            None => 0,
            Some(ballot) => {
                let d = Sha256::digest(&ballot_bytes(ballot));
                u64::from_be_bytes(d[..8].try_into().expect("32-byte digest")).max(1)
            }
        }
    };
    let inputs: Vec<u64> = reveals.iter().map(digest_of).collect();
    let instances: Vec<OmConsensus> = (0..n).map(|me| OmConsensus::new(me, n, f)).collect();
    let (instances, _) = run_pure_instances(instances, &inputs, no_tamper);
    // Interactive consistency: every honest processor holds the same
    // per-voter digest vector; the caller acts as (honest) processor 0.
    let agreed: Vec<Option<u64>> = instances[0].vector();

    // 2. Verify reveals against agreed digests; discard mismatches.
    let mut valid = Vec::new();
    let mut discarded = Vec::new();
    for (voter, (reveal, agreed_digest)) in reveals.iter().zip(&agreed).enumerate() {
        match (reveal, agreed_digest) {
            (Some(ballot), Some(d)) if *d == digest_of(&Some(ballot.clone())) => {
                if ballot.validate(num_candidates).is_ok() {
                    valid.push(ballot.clone());
                } else {
                    discarded.push(voter);
                }
            }
            _ => discarded.push(voter),
        }
    }

    // 3. Deterministic tally over the agreed ballot set.
    let winner = tally(rule, &valid, num_candidates)?;
    Ok(ElectionOutcome {
        winner,
        discarded_voters: discarded,
    })
}

fn argmax(scores: &[u64]) -> usize {
    let mut best = 0usize;
    for (i, &s) in scores.iter().enumerate() {
        if s > scores[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(r: &[usize]) -> Ballot {
        Ballot::new(r.to_vec())
    }

    #[test]
    fn ballot_validation() {
        assert!(b(&[0, 1, 2]).validate(3).is_ok());
        assert!(b(&[]).validate(3).is_err());
        assert!(b(&[3]).validate(3).is_err());
        assert!(b(&[0, 0]).validate(3).is_err());
        assert!(b(&[2]).validate(3).is_ok(), "partial ballots allowed");
    }

    #[test]
    fn plurality_counts_first_choices() {
        let ballots = vec![b(&[0, 1]), b(&[0, 2]), b(&[1, 0]), b(&[2, 1])];
        assert_eq!(tally(VotingRule::Plurality, &ballots, 3).unwrap(), 0);
    }

    #[test]
    fn borda_rewards_broad_support() {
        // Candidate 1 is everyone's second choice; 0 and 2 split firsts.
        let ballots = vec![
            b(&[0, 1, 2]),
            b(&[0, 1, 2]),
            b(&[2, 1, 0]),
            b(&[2, 1, 0]),
            b(&[1, 0, 2]),
        ];
        assert_eq!(tally(VotingRule::Borda, &ballots, 3).unwrap(), 1);
        // Plurality would tie 0/2 (2 each) and 1 (1) — broken to 0.
        assert_eq!(tally(VotingRule::Plurality, &ballots, 3).unwrap(), 0);
    }

    #[test]
    fn irv_transfers_votes() {
        // 0: 3 firsts; 1: 2 firsts + 2 transfers from 2; 2: 2 firsts.
        let ballots = vec![
            b(&[0, 1, 2]),
            b(&[0, 2, 1]),
            b(&[0, 1, 2]),
            b(&[1, 2, 0]),
            b(&[1, 0, 2]),
            b(&[2, 1, 0]),
            b(&[2, 1, 0]),
        ];
        // Round 1: 0→3, 1→2, 2→2, no majority (7 votes, need 4);
        // eliminate 2 (tie with 1 broken against the higher index),
        // transfers → 1 has 4 > 7/2 → wins.
        assert_eq!(tally(VotingRule::InstantRunoff, &ballots, 3).unwrap(), 1);
    }

    #[test]
    fn invalid_ballots_are_discarded() {
        let ballots = vec![b(&[0]), b(&[9, 9]), b(&[1]), b(&[1])];
        assert_eq!(tally(VotingRule::Plurality, &ballots, 2).unwrap(), 1);
    }

    #[test]
    fn empty_election_rejected() {
        assert_eq!(
            tally(VotingRule::Plurality, &[], 3).unwrap_err(),
            AuthorityError::EmptyElection
        );
        assert_eq!(
            tally(VotingRule::Plurality, &[b(&[0])], 0).unwrap_err(),
            AuthorityError::EmptyElection
        );
    }

    #[test]
    fn deterministic_tie_break_to_lower_index() {
        let ballots = vec![b(&[0]), b(&[1])];
        assert_eq!(tally(VotingRule::Plurality, &ballots, 2).unwrap(), 0);
        assert_eq!(tally(VotingRule::Borda, &ballots, 2).unwrap(), 0);
    }

    #[test]
    fn irv_single_candidate() {
        let ballots = vec![b(&[0]), b(&[0])];
        assert_eq!(tally(VotingRule::InstantRunoff, &ballots, 1).unwrap(), 0);
    }

    #[test]
    fn sealed_ballot_round_trip_and_binding() {
        let ballot = b(&[2, 0, 1]);
        let (seal, opening) = SealedBallot::seal(&ballot, [7u8; 32]);
        assert!(seal.verify(&ballot, &opening));
        assert!(
            !seal.verify(&b(&[0, 2, 1]), &opening),
            "swapped ranking rejected"
        );
    }

    #[test]
    fn ballot_bytes_is_injective_on_rankings() {
        assert_ne!(ballot_bytes(&b(&[0, 1])), ballot_bytes(&b(&[1, 0])));
        assert_ne!(ballot_bytes(&b(&[0])), ballot_bytes(&b(&[0, 1])));
    }

    #[test]
    fn distributed_election_elects_and_discards() {
        // 4 voters (n > 3f with f = 1); voter 3 never reveals.
        let reveals = vec![Some(b(&[1, 0])), Some(b(&[1, 0])), Some(b(&[0, 1])), None];
        let outcome = distributed_election(VotingRule::Plurality, &reveals, 2, 4, 1).unwrap();
        assert_eq!(outcome.winner, 1);
        assert_eq!(outcome.discarded_voters, vec![3]);
    }

    #[test]
    fn distributed_election_discards_malformed_ballots() {
        let reveals = vec![
            Some(b(&[0])),
            Some(b(&[9, 9])), // out of range
            Some(b(&[1])),
            Some(b(&[1])),
        ];
        let outcome = distributed_election(VotingRule::Plurality, &reveals, 2, 4, 1).unwrap();
        assert_eq!(outcome.winner, 1);
        assert_eq!(outcome.discarded_voters, vec![1]);
    }

    #[test]
    fn distributed_election_with_no_valid_ballots_errs() {
        let reveals = vec![None, None, None, None];
        assert_eq!(
            distributed_election(VotingRule::Borda, &reveals, 2, 4, 1).unwrap_err(),
            AuthorityError::EmptyElection
        );
    }
}

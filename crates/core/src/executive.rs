//! The executive service: outcomes, utilities and punishment.
//!
//! §3.4: "The task of the executive service is to carry out the agents'
//! actions … announcing the play outcome, publishing the utilities and
//! collecting the choice of actions. Moreover, by order of the judicial
//! service, this service restricts the action of dishonest agents according
//! to the punishment scheme."
//!
//! Punishment schemes implemented (all three the paper discusses):
//! * [`Punishment::Disconnect`] — "the only effective option [against a
//!   complete Byzantine agent] is to disconnect \[them\] from the network";
//! * [`Punishment::Fine`] — real-money deposits: a fixed cost added to the
//!   offender per offense;
//! * [`Punishment::Reputation`] — reputation loss; agents below the
//!   threshold are shunned (treated as disconnected).

use ga_crypto::audit_log::AuditLog;
use ga_crypto::Digest;
use ga_game_theory::profile::PureProfile;

use crate::judicial::Verdict;

/// The punishment scheme in force (elected alongside the game).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Punishment {
    /// Permanently remove the offender from the game.
    #[default]
    Disconnect,
    /// Charge the offender this much per offense.
    Fine(f64),
    /// Deduct reputation per offense; at or below `threshold` the agent is
    /// shunned (equivalent to disconnection).
    Reputation {
        /// Reputation lost per offense.
        penalty: i64,
        /// Shunning threshold.
        threshold: i64,
        /// Starting reputation.
        initial: i64,
    },
    /// Real-money deposits (§3.4): every agent stakes `stake` up front;
    /// each offense forfeits `forfeit`, and an agent whose remaining
    /// deposit cannot cover another forfeit is disconnected.
    Deposit {
        /// The up-front stake.
        stake: f64,
        /// Amount forfeited per offense.
        forfeit: f64,
    },
}

/// The executive service's ledger for one game instance.
#[derive(Debug, Clone)]
pub struct Executive {
    scheme: Punishment,
    disconnected: Vec<bool>,
    fines: Vec<f64>,
    reputation: Vec<i64>,
    deposits: Vec<f64>,
    offenses: Vec<u64>,
    log: AuditLog,
}

impl Executive {
    /// Creates the ledger for `n` agents under `scheme`.
    pub fn new(n: usize, scheme: Punishment) -> Executive {
        let initial_rep = match scheme {
            Punishment::Reputation { initial, .. } => initial,
            _ => 0,
        };
        let initial_deposit = match scheme {
            Punishment::Deposit { stake, .. } => stake,
            _ => 0.0,
        };
        Executive {
            scheme,
            disconnected: vec![false; n],
            fines: vec![0.0; n],
            reputation: vec![initial_rep; n],
            deposits: vec![initial_deposit; n],
            offenses: vec![0; n],
            log: AuditLog::new(),
        }
    }

    /// The punishment scheme in force.
    pub fn scheme(&self) -> Punishment {
        self.scheme
    }

    /// Applies the verdicts of one play; returns the agents punished *this
    /// play*.
    pub fn apply_verdicts(&mut self, verdicts: &[Verdict]) -> Vec<usize> {
        let mut punished = Vec::new();
        for (agent, v) in verdicts.iter().enumerate() {
            if v.is_honest() || *v == Verdict::AlreadyPunished {
                continue;
            }
            self.offenses[agent] += 1;
            match self.scheme {
                Punishment::Disconnect => self.disconnected[agent] = true,
                Punishment::Fine(amount) => self.fines[agent] += amount,
                Punishment::Reputation {
                    penalty, threshold, ..
                } => {
                    self.reputation[agent] -= penalty;
                    if self.reputation[agent] <= threshold {
                        self.disconnected[agent] = true;
                    }
                }
                Punishment::Deposit { forfeit, .. } => {
                    self.deposits[agent] -= forfeit;
                    if self.deposits[agent] < forfeit {
                        self.disconnected[agent] = true;
                    }
                }
            }
            punished.push(agent);
        }
        punished
    }

    /// Whether `agent` may still participate.
    pub fn is_active(&self, agent: usize) -> bool {
        !self.disconnected.get(agent).copied().unwrap_or(true)
    }

    /// Per-agent active flags (the complement of disconnection).
    pub fn active_flags(&self) -> Vec<bool> {
        self.disconnected.iter().map(|d| !d).collect()
    }

    /// Accumulated fine of `agent`.
    pub fn fine(&self, agent: usize) -> f64 {
        self.fines.get(agent).copied().unwrap_or(0.0)
    }

    /// Current reputation of `agent` (0 unless the scheme is reputation).
    pub fn reputation(&self, agent: usize) -> i64 {
        self.reputation.get(agent).copied().unwrap_or(0)
    }

    /// Offense count of `agent`.
    pub fn offenses(&self, agent: usize) -> u64 {
        self.offenses.get(agent).copied().unwrap_or(0)
    }

    /// Remaining deposit of `agent` (0 unless the scheme is deposits).
    pub fn deposit(&self, agent: usize) -> f64 {
        self.deposits.get(agent).copied().unwrap_or(0.0)
    }

    /// An agent's effective cost for a play: the raw game cost plus the
    /// fines charged this play (under the fine scheme, `per_offense ×
    /// offenses_this_play` is already folded into
    /// [`apply_verdicts`](Self::apply_verdicts); this helper adds the raw
    /// cost and cumulative fines for reporting).
    pub fn effective_cost(&self, agent: usize, raw_cost: f64) -> f64 {
        raw_cost + self.fine(agent)
    }

    /// Publishes a play outcome into the tamper-evident log; returns the
    /// outcome digest (the value subsequent Byzantine agreements reference).
    pub fn publish_outcome(&mut self, round: u64, outcome: &PureProfile) -> Digest {
        let mut payload = Vec::with_capacity(8 + outcome.len() * 8);
        payload.extend_from_slice(&round.to_be_bytes());
        for &a in outcome.actions() {
            payload.extend_from_slice(&(a as u64).to_be_bytes());
        }
        self.log.append(&payload)
    }

    /// The tamper-evident outcome log.
    pub fn log(&self) -> &AuditLog {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdicts(bad: &[usize], n: usize) -> Vec<Verdict> {
        (0..n)
            .map(|i| {
                if bad.contains(&i) {
                    Verdict::NotBestResponse
                } else {
                    Verdict::Honest
                }
            })
            .collect()
    }

    #[test]
    fn disconnect_scheme_removes_offender() {
        let mut e = Executive::new(3, Punishment::Disconnect);
        let punished = e.apply_verdicts(&verdicts(&[1], 3));
        assert_eq!(punished, vec![1]);
        assert!(!e.is_active(1));
        assert!(e.is_active(0) && e.is_active(2));
        assert_eq!(e.active_flags(), vec![true, false, true]);
    }

    #[test]
    fn fine_scheme_accumulates() {
        let mut e = Executive::new(2, Punishment::Fine(2.5));
        e.apply_verdicts(&verdicts(&[0], 2));
        e.apply_verdicts(&verdicts(&[0], 2));
        assert_eq!(e.fine(0), 5.0);
        assert!(e.is_active(0), "fined agents keep playing");
        assert_eq!(e.effective_cost(0, 1.0), 6.0);
        assert_eq!(e.offenses(0), 2);
    }

    #[test]
    fn reputation_scheme_shuns_below_threshold() {
        let mut e = Executive::new(
            2,
            Punishment::Reputation {
                penalty: 4,
                threshold: 0,
                initial: 10,
            },
        );
        e.apply_verdicts(&verdicts(&[1], 2));
        assert!(e.is_active(1), "reputation 6 > 0");
        e.apply_verdicts(&verdicts(&[1], 2));
        assert!(e.is_active(1), "reputation 2 > 0");
        e.apply_verdicts(&verdicts(&[1], 2));
        assert!(!e.is_active(1), "reputation −2 ≤ 0: shunned");
        assert_eq!(e.reputation(1), -2);
    }

    #[test]
    fn deposit_scheme_forfeits_then_disconnects() {
        let mut e = Executive::new(
            2,
            Punishment::Deposit {
                stake: 10.0,
                forfeit: 4.0,
            },
        );
        assert_eq!(e.deposit(1), 10.0);
        e.apply_verdicts(&verdicts(&[1], 2));
        assert!(e.is_active(1), "6 left ≥ one more forfeit");
        assert_eq!(e.deposit(1), 6.0);
        e.apply_verdicts(&verdicts(&[1], 2));
        assert!(!e.is_active(1), "2 left < forfeit: disconnected");
        assert_eq!(e.deposit(1), 2.0);
        assert_eq!(e.deposit(0), 10.0, "honest stake untouched");
    }

    #[test]
    fn already_punished_is_not_double_counted() {
        let mut e = Executive::new(2, Punishment::Disconnect);
        e.apply_verdicts(&[Verdict::NotBestResponse, Verdict::Honest]);
        let again = e.apply_verdicts(&[Verdict::AlreadyPunished, Verdict::Honest]);
        assert!(again.is_empty());
        assert_eq!(e.offenses(0), 1);
    }

    #[test]
    fn outcome_log_chains_and_differs() {
        let mut e = Executive::new(2, Punishment::Disconnect);
        let d1 = e.publish_outcome(0, &PureProfile::new(vec![0, 1]));
        let d2 = e.publish_outcome(1, &PureProfile::new(vec![0, 1]));
        assert_ne!(d1, d2, "round number separates identical outcomes");
        assert!(e.log().verify().is_ok());
        assert_eq!(e.log().len(), 2);
    }
}

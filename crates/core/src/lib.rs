//! # game-authority — the paper's middleware
//!
//! A self-stabilizing, Byzantine fault-tolerant **game authority** for
//! distributed selfish-computer systems (Dolev, Schiller, Spirakis, Tsigas;
//! PODC'07 brief announcement / TCS 411(2010) 2459–2466).
//!
//! The middleware enforces the rules of a strategic game the honest
//! majority elected, structured — like the paper — as three services under
//! separation of powers:
//!
//! * [`legislative`] — elects the game `Γ = ⟨N, (Πᵢ), (uᵢ)⟩` by voting
//!   (plurality / Borda / instant-runoff) over a Byzantine-agreed ballot
//!   set;
//! * [`judicial`] — audits every play: *legitimate action choice*, *private
//!   & simultaneous choice* (commit–reveal), *foul plays* (not a best
//!   response), and — for mixed strategies — *credible randomness* via
//!   committed PRG seeds (§5.3);
//! * [`executive`] — publishes outcomes (hash-chained), collects choices,
//!   and applies punishments (disconnection / fines / reputation).
//!
//! Two integration levels:
//!
//! * [`authority`] — the **reference engine**: one-machine referee running
//!   the complete §3.3 protocol logic (real commitments, real audits, real
//!   punishments) with abstracted transport. This is what the paper's
//!   *trusted executive* assumption licenses, and what the PoM experiments
//!   measure.
//! * [`distributed`] — the full stack over `ga-simnet`: every agent is a
//!   processor; the play schedule is driven by the self-stabilizing clock
//!   of `ga-clocksync`, and every agreement (previous outcome, commitment
//!   set, foul set) runs through `ga-agreement` — the complete
//!   "sequence of several activations of the Byzantine agreement protocol"
//!   of §3.3, with Theorem 1's recovery-after-transient-faults behaviour.
//!
//! ## Quickstart
//!
//! ```
//! use game_authority::authority::{Authority, AuthorityConfig};
//! use game_authority::agent::Behavior;
//! use ga_games::matching_pennies::{manipulated_matching_pennies, MANIPULATE};
//!
//! // Fig. 1: agent A mixes honestly; agent B plays the hidden manipulation.
//! let game = manipulated_matching_pennies();
//! let mut authority = Authority::new(
//!     &game,
//!     vec![
//!         Behavior::honest_mixed(vec![0.5, 0.5]),
//!         Behavior::hidden_manipulator(vec![0.5, 0.5, 0.0], MANIPULATE),
//!     ],
//!     AuthorityConfig::default(),
//! );
//! let report = authority.play_round();
//! // The judicial service catches the manipulation immediately.
//! assert!(!report.verdicts[1].is_honest());
//! assert!(report.punished.contains(&1));
//! ```

pub mod agent;
pub mod authority;
pub mod distributed;
pub mod executive;
pub mod judicial;
pub mod legislative;
pub mod supervised_rra;

use std::error::Error;
use std::fmt;

/// Errors surfaced by the middleware.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AuthorityError {
    /// An election was attempted with no ballots or no candidates.
    EmptyElection,
    /// A ballot referenced an unknown candidate or was malformed.
    MalformedBallot(String),
    /// An agent id was out of range.
    UnknownAgent(usize),
}

impl fmt::Display for AuthorityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthorityError::EmptyElection => write!(f, "election needs ballots and candidates"),
            AuthorityError::MalformedBallot(why) => write!(f, "malformed ballot: {why}"),
            AuthorityError::UnknownAgent(a) => write!(f, "unknown agent {a}"),
        }
    }
}

impl Error for AuthorityError {}

//! The distributed game authority over `ga-simnet`.
//!
//! §3.3, executed literally: "Upon a pulse, all agents start a new play of
//! the game that is carried out by a sequence of several activations of the
//! Byzantine agreement protocol."
//!
//! Each play occupies one period of the self-stabilizing clock
//! (`ga-clocksync`); the clock value schedules the phases (R = rounds of
//! one OM-consensus activation, M = 3R + 4):
//!
//! | clock value    | phase                                                   |
//! |----------------|---------------------------------------------------------|
//! | 1 ..= R        | **BA 1** — agree on the previous play's outcome digest  |
//! | R+1            | broadcast commitments (Blum)                            |
//! | R+2 ..= 2R+1   | **BA 2** — agree on the commitment-set digest           |
//! | 2R+2           | broadcast reveals                                       |
//! | 2R+3 ..= 3R+2  | **BA 3** — agree on the foul set (bitmask)              |
//! | 3R+3           | executive: punish the agreed fouls, record the outcome  |
//!
//! Because every phase is *derived from the clock value*, a transient
//! fault that scrambles play state (misaligned epochs, stale commitments,
//! arbitrary clock) heals at the next clock wrap — the same argument as
//! Theorem 1, now for the whole middleware loop.
//!
//! Disconnected agents are not expected to submit; the executive plays the
//! null action 0 on their behalf (their demand is dropped) so the game
//! stays well-formed for the survivors.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;

use ga_agreement::consensus::OmConsensus;
use ga_agreement::traits::BaInstance;
use ga_agreement::wire::{Reader, Writer};
use ga_clocksync::clock::ClockRule;
use ga_clocksync::process::ClockProcess;
use ga_crypto::commitment::{Commitment, Opening};
use ga_crypto::prg::Prg;
use ga_crypto::sha256::Sha256;
use ga_game_theory::best_response::{best_response, best_responses};
use ga_game_theory::game::Game;
use ga_game_theory::profile::PureProfile;
use ga_simnet::prelude::*;
use rand::Rng;

use crate::judicial::action_bytes;

/// Message tags on the authority's multiplexed channel.
mod tag {
    pub const BA1: u8 = 0xA1;
    pub const BA2: u8 = 0xA2;
    pub const BA3: u8 = 0xA3;
    pub const COMMIT: u8 = 0xC0;
    pub const REVEAL: u8 = 0xD0;
}

/// How this processor's agent behaves in the distributed protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentMode {
    /// Best-responds to the previous outcome and follows the protocol.
    Honest,
    /// Follows the protocol but plays a *worst* response — §3.2's foul.
    WorstResponse,
    /// Commits to one action, reveals another.
    EquivocalReveal,
    /// Never commits or reveals (but still participates in agreement —
    /// a lazy free-rider rather than a crashed node).
    Mute,
    /// Plays honestly but frames processor 0 in the foul agreement:
    /// its BA 3 proposal always carries agent 0's foul bit, evidence or
    /// not. The executive's `f`-quorum is what keeps this harmless.
    Framer,
    /// Commits to — and faithfully reveals — an action outside its own
    /// action space (the commitment verifies; only the range audit can
    /// catch it).
    OutOfRangeReveal,
}

/// One play's transient state.
#[derive(Debug, Clone, Default)]
struct PlayState {
    my_action: Option<usize>,
    my_opening: Option<Opening>,
    commitments: HashMap<usize, Commitment>,
    reveals: HashMap<usize, (usize, Opening)>,
    /// Agents whose harvested reveal named an action outside their
    /// action space. Quarantined foul evidence: such a reveal never
    /// enters `reveals` (and thus never the outcome) and is proposed as
    /// a foul in this processor's BA 3 input, so conviction flows
    /// through the agreed quorum like every other foul.
    invalid: u64,
}

/// The complete outcome of one finished play, as recorded by a processor.
#[derive(Debug, Clone, PartialEq)]
pub struct PlayRecord {
    /// The outcome profile (null action 0 for disconnected agents).
    pub outcome: PureProfile,
    /// The agreed foul bitmask for this play.
    pub fouls: u64,
}

/// One processor of the distributed authority.
pub struct AuthorityProcess {
    game: Arc<dyn Game + Send + Sync>,
    me: usize,
    n: usize,
    f: usize,
    mode: AgentMode,
    clock: ClockRule,
    ba_rounds: u64,
    ba: [OmConsensus; 3],
    /// Rel-round trackers for the three BA activations.
    ba_progress: [Option<u64>; 3],
    play: PlayState,
    nonce_prg: Prg,
    /// Locally recorded previous outcome (None before the first play).
    prev_outcome: Option<PureProfile>,
    /// Executive view: disconnected agents.
    punished: Vec<bool>,
    /// Completed plays.
    records: Vec<PlayRecord>,
    /// Digest agreement results (diagnostics).
    last_outcome_digest: u64,
}

impl std::fmt::Debug for AuthorityProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuthorityProcess")
            .field("me", &self.me)
            .field("mode", &self.mode)
            .field("clock", &self.clock.value())
            .field("plays", &self.records.len())
            .finish_non_exhaustive()
    }
}

impl AuthorityProcess {
    /// Creates the processor `me` of an `n`-agent authority tolerating `f`
    /// Byzantine agents, playing `game` in `mode`.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3f` (OM backend + clock rule), `n ≤ 64` (the
    /// foul bitmask), and the game has `n` agents.
    pub fn new(
        game: Arc<dyn Game + Send + Sync>,
        me: usize,
        n: usize,
        f: usize,
        mode: AgentMode,
        seed: u64,
    ) -> AuthorityProcess {
        assert!(n <= 64, "foul bitmask supports up to 64 agents");
        assert_eq!(game.num_agents(), n, "game arity must match n");
        let ba = [
            OmConsensus::new(me, n, f),
            OmConsensus::new(me, n, f),
            OmConsensus::new(me, n, f),
        ];
        let ba_rounds = ba[0].rounds();
        let modulus = Self::schedule_len(ba_rounds);
        AuthorityProcess {
            game,
            me,
            n,
            f,
            mode,
            clock: ClockRule::new(n, f, modulus, 0),
            ba_rounds,
            ba,
            ba_progress: [None; 3],
            play: PlayState::default(),
            nonce_prg: Prg::from_seed_material(b"ga-dist-nonce", seed ^ (me as u64) << 16),
            prev_outcome: None,
            punished: vec![false; n],
            records: Vec::new(),
            last_outcome_digest: 0,
        }
    }

    /// The clock modulus for a given BA round count: `3R + 4`.
    pub fn schedule_len(ba_rounds: u64) -> u64 {
        3 * ba_rounds + 4
    }

    /// Completed play records.
    pub fn records(&self) -> &[PlayRecord] {
        &self.records
    }

    /// The executive's local disconnection flags.
    pub fn punished(&self) -> &[bool] {
        &self.punished
    }

    /// Current clock value (diagnostics).
    pub fn clock_value(&self) -> u64 {
        self.clock.value()
    }

    fn digest64(bytes: &[u8]) -> u64 {
        let d = Sha256::digest(bytes);
        u64::from_be_bytes(d[..8].try_into().expect("digest has 32 bytes"))
    }

    fn outcome_digest(&self) -> u64 {
        match &self.prev_outcome {
            None => 0,
            Some(p) => {
                let mut bytes = Vec::with_capacity(p.len() * 8);
                for &a in p.actions() {
                    bytes.extend_from_slice(&(a as u64).to_be_bytes());
                }
                Self::digest64(&bytes)
            }
        }
    }

    fn commitment_set_digest(&self) -> u64 {
        let mut entries: Vec<(usize, [u8; 32])> = self
            .play
            .commitments
            .iter()
            .map(|(&a, c)| (a, *c.digest()))
            .collect();
        entries.sort();
        let mut bytes = Vec::new();
        for (agent, digest) in entries {
            bytes.extend_from_slice(&(agent as u64).to_be_bytes());
            bytes.extend_from_slice(&digest);
        }
        Self::digest64(&bytes)
    }

    /// Local audit producing the foul bitmask this processor proposes.
    fn local_foul_mask(&self) -> u64 {
        let mut mask = 0u64;
        for agent in 0..self.n {
            if self.punished[agent] {
                continue; // already out; no fresh foul
            }
            if self.play.invalid & (1 << agent) != 0 {
                mask |= 1 << agent; // revealed outside the action space
                continue;
            }
            let fouled = match (
                self.play.commitments.get(&agent),
                self.play.reveals.get(&agent),
            ) {
                (Some(c), Some((action, opening))) => {
                    if c.verify(&action_bytes(*action), opening).is_err()
                        || *action >= self.game.num_actions(agent)
                    {
                        true
                    } else if let Some(prev) = &self.prev_outcome {
                        !best_responses(self.game.as_ref(), agent, prev).contains(action)
                    } else {
                        false
                    }
                }
                _ => true, // missing commitment or reveal
            };
            if fouled {
                mask |= 1 << agent;
            }
        }
        mask
    }

    fn choose_action(&self) -> usize {
        let actions = self.game.num_actions(self.me);
        match self.mode {
            AgentMode::Honest
            | AgentMode::EquivocalReveal
            | AgentMode::Mute
            | AgentMode::Framer => match &self.prev_outcome {
                Some(prev) => best_response(self.game.as_ref(), self.me, prev),
                None => 0,
            },
            AgentMode::WorstResponse => match &self.prev_outcome {
                Some(prev) => {
                    // Deliberately pick a non-best response if one exists.
                    let best = best_responses(self.game.as_ref(), self.me, prev);
                    (0..actions).find(|a| !best.contains(a)).unwrap_or(0)
                }
                None => 0,
            },
            // The smallest action outside the agent's space.
            AgentMode::OutOfRangeReveal => actions,
        }
    }

    /// Steps BA instance `idx` at relative round `rel` and sends its
    /// traffic under the matching tag.
    fn step_ba(
        &mut self,
        idx: usize,
        rel: u64,
        inbox: &[(usize, Vec<u8>)],
        out: &mut Vec<(usize, Bytes)>,
    ) {
        let t = [tag::BA1, tag::BA2, tag::BA3][idx];
        let filtered: Vec<(usize, Vec<u8>)> = inbox
            .iter()
            .filter_map(|(from, payload)| {
                let mut r = Reader::new(payload);
                if r.get_u8()? != t {
                    return None;
                }
                Some((*from, r.get_bytes()?.to_vec()))
            })
            .collect();
        let view: Vec<(usize, &[u8])> = filtered.iter().map(|(s, p)| (*s, p.as_slice())).collect();
        let mut outgoing: Vec<(usize, Bytes)> = Vec::new();
        {
            let mut send = |to: usize, payload: Bytes| outgoing.push((to, payload));
            self.ba[idx].step(rel, &view, &mut send);
        }
        for (to, inner) in outgoing {
            let mut w = Writer::new();
            w.put_u8(t);
            w.put_bytes(&inner);
            out.push((to, w.finish().into()));
        }
    }

    /// Records a harvested commitment digest (the first one per agent
    /// wins; commitments are binding, not amendable).
    fn harvest_commit(&mut self, from: usize, digest: [u8; 32]) {
        self.play
            .commitments
            .entry(from)
            .or_insert_with(|| Commitment::from_digest(digest));
    }

    /// Records a harvested reveal. An action outside the agent's action
    /// space is foul evidence, not input: it is quarantined into
    /// `PlayState::invalid` so it can never be laundered into the
    /// outcome as the null action.
    fn harvest_reveal(&mut self, from: usize, action: usize, opening: Opening) {
        if from >= self.n {
            return;
        }
        if action >= self.game.num_actions(from) {
            self.play.invalid |= 1 << from;
            return;
        }
        self.play.reveals.entry(from).or_insert((action, opening));
    }

    /// Folds BA 3's interactive-consistency vector into the agreed foul
    /// mask. A bit convicts only when **more than `f`** of the agreed
    /// per-source proposals carry it — i.e. at least one honest auditor
    /// — so up to `f` Byzantine processors can never frame a correct
    /// agent on their own, and resilience degrades with the threshold
    /// exactly as §3.3 states it (at `f = 0` a single accusation
    /// convicts). Already-punished agents are skipped: they are out, no
    /// fresh foul (a persistent accuser must not re-stamp their bit into
    /// every later play record).
    fn agreed_foul_mask(&self) -> u64 {
        let proposals: Vec<u64> = self.ba[2].vector().into_iter().flatten().collect();
        let mut mask = 0u64;
        for agent in 0..self.n {
            if self.punished[agent] {
                continue;
            }
            let votes = proposals.iter().filter(|&&p| p & (1 << agent) != 0).count();
            if votes > self.f {
                mask |= 1 << agent;
            }
        }
        mask
    }

    /// The executive phase: convict the agreed fouls, disconnect them,
    /// and record the play.
    ///
    /// Conviction flows **only** through the agreed mask — local
    /// evidence (`PlayState::invalid`) enters via this processor's BA 3
    /// proposal, never unilaterally, so a reveal delivered selectively
    /// to some processors can not split the executives' `punished`
    /// state. The quarantine still guarantees an invalid reveal is
    /// never adopted as an outcome action.
    fn conclude_play(&mut self) {
        let fouls = self.agreed_foul_mask();
        for agent in 0..self.n {
            if fouls & (1 << agent) != 0 {
                self.punished[agent] = true;
            }
        }
        // Outcome: revealed actions of surviving agents whose reveals
        // audit clean; null action 0 otherwise.
        let actions: Vec<usize> = (0..self.n)
            .map(|agent| {
                if self.punished[agent] {
                    return 0;
                }
                match self.play.reveals.get(&agent) {
                    Some((a, _)) if *a < self.game.num_actions(agent) => *a,
                    _ => 0,
                }
            })
            .collect();
        let outcome = PureProfile::new(actions);
        self.prev_outcome = Some(outcome.clone());
        self.records.push(PlayRecord { outcome, fouls });
    }
}

impl Process for AuthorityProcess {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        // Sort the inbox: clock claims vs tagged authority traffic. Ignore
        // traffic from agents the executive disconnected.
        let mut clock_claims: Vec<Option<u64>> = vec![None; self.n];
        let mut traffic: Vec<(usize, Vec<u8>)> = Vec::new();
        for m in ctx.inbox() {
            let from = m.from.index();
            if from < self.n && self.punished[from] {
                continue;
            }
            if let Some(v) = ClockProcess::decode(m.bytes()) {
                if from < self.n && clock_claims[from].is_none() {
                    clock_claims[from] = Some(v);
                }
            } else {
                traffic.push((from, m.bytes().to_vec()));
            }
        }

        // Clock tick drives the schedule.
        let received: Vec<u64> = clock_claims.into_iter().flatten().collect();
        let v = self.clock.step(&received, ctx.rng());
        ctx.broadcast(ClockProcess::encode(v));

        let r = self.ba_rounds;
        let mut out: Vec<(usize, Bytes)> = Vec::new();

        // Harvest commitments/reveals whenever they arrive (they are sent
        // in their phase, delivered one pulse later).
        for (from, payload) in &traffic {
            let mut rd = Reader::new(payload);
            match rd.get_u8() {
                Some(t) if t == tag::COMMIT => {
                    if let Some(digest) = rd.get_bytes().and_then(|b| <[u8; 32]>::try_from(b).ok())
                    {
                        self.harvest_commit(*from, digest);
                    }
                }
                Some(t) if t == tag::REVEAL => {
                    if let (Some(action), Some(nonce)) = (
                        rd.get_u64(),
                        rd.get_bytes().and_then(|b| <[u8; 32]>::try_from(b).ok()),
                    ) {
                        self.harvest_reveal(*from, action as usize, Opening::from_nonce(nonce));
                    }
                }
                _ => {}
            }
        }

        // Phase dispatch.
        if v == 1 {
            // Fresh play: reset per-play state, start BA1 on the previous
            // outcome digest.
            self.play = PlayState::default();
            self.ba_progress = [None; 3];
            self.ba[0].begin(self.outcome_digest());
            self.ba_progress[0] = Some(0);
            self.step_ba(0, 0, &traffic, &mut out);
        } else if v >= 2 && v <= r {
            if let Some(prev) = self.ba_progress[0] {
                let rel = prev + 1;
                if rel < r {
                    self.step_ba(0, rel, &traffic, &mut out);
                    self.ba_progress[0] = Some(rel);
                }
            }
        } else if v == r + 1 {
            self.last_outcome_digest = self.ba[0].decided().unwrap_or(0);
            // Commit phase.
            if self.mode != AgentMode::Mute && !self.punished[self.me] {
                let action = self.choose_action();
                let nonce = self.nonce_prg.next_block();
                let (c, o) = Commitment::commit(&action_bytes(action), nonce);
                self.play.my_action = Some(action);
                self.play.my_opening = Some(o);
                self.play.commitments.insert(self.me, c);
                let mut w = Writer::new();
                w.put_u8(tag::COMMIT);
                w.put_bytes(c.digest());
                // One allocation; every recipient shares the buffer.
                let payload: Bytes = w.finish().into();
                for to in 0..self.n {
                    if to != self.me {
                        out.push((to, payload.clone()));
                    }
                }
            }
        } else if v == r + 2 {
            // Start BA2 on the commitment-set digest.
            self.ba[1].begin(self.commitment_set_digest());
            self.ba_progress[1] = Some(0);
            self.step_ba(1, 0, &traffic, &mut out);
        } else if v >= r + 3 && v <= 2 * r + 1 {
            if let Some(prev) = self.ba_progress[1] {
                let rel = prev + 1;
                if rel < r {
                    self.step_ba(1, rel, &traffic, &mut out);
                    self.ba_progress[1] = Some(rel);
                }
            }
        } else if v == 2 * r + 2 {
            // Reveal phase.
            if let (Some(action), Some(opening)) = (self.play.my_action, self.play.my_opening) {
                let revealed_action = match self.mode {
                    AgentMode::EquivocalReveal => {
                        // Reveal something other than the committed action.
                        (action + 1) % self.game.num_actions(self.me)
                    }
                    _ => action,
                };
                // Same quarantine as harvested reveals: an out-of-range
                // self-reveal is foul evidence, never outcome input.
                self.harvest_reveal(self.me, revealed_action, opening);
                let mut w = Writer::new();
                w.put_u8(tag::REVEAL);
                w.put_u64(revealed_action as u64);
                w.put_bytes(opening.nonce());
                // One allocation; every recipient shares the buffer.
                let payload: Bytes = w.finish().into();
                for to in 0..self.n {
                    if to != self.me {
                        out.push((to, payload.clone()));
                    }
                }
            }
        } else if v == 2 * r + 3 {
            // Start BA3 on the locally audited foul mask.
            let mut proposal = self.local_foul_mask();
            if self.mode == AgentMode::Framer {
                proposal |= 1; // the false accusation against agent 0
            }
            self.ba[2].begin(proposal);
            self.ba_progress[2] = Some(0);
            self.step_ba(2, 0, &traffic, &mut out);
        } else if v >= 2 * r + 4 && v <= 3 * r + 2 {
            if let Some(prev) = self.ba_progress[2] {
                let rel = prev + 1;
                if rel < r {
                    self.step_ba(2, rel, &traffic, &mut out);
                    self.ba_progress[2] = Some(rel);
                }
            }
        } else if v == 3 * r + 3 {
            self.conclude_play();
        }

        for (to, payload) in out {
            ctx.send(ProcessId(to), payload);
        }
    }

    fn scramble(&mut self, rng: &mut rand::rngs::StdRng) {
        self.clock.set_arbitrary(rng.gen());
        self.ba_progress = [
            rng.gen_bool(0.5).then(|| rng.gen_range(0..self.ba_rounds)),
            rng.gen_bool(0.5).then(|| rng.gen_range(0..self.ba_rounds)),
            rng.gen_bool(0.5).then(|| rng.gen_range(0..self.ba_rounds)),
        ];
        self.play = PlayState::default();
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "authority"
    }
}

/// The construction half of a distributed authority, decoupled from
/// simulator wiring: which game is played, the fault threshold, and each
/// agent's [`AgentMode`].
///
/// Spec-driven frontends (e.g. the scenario engine) own the topology,
/// delivery model, churn schedule and run seed themselves and call
/// [`process`](AuthorityCluster::process) from their own factory;
/// [`build_authority_sim`] remains the classic complete-graph wiring for
/// direct use.
#[derive(Clone)]
pub struct AuthorityCluster {
    game: Arc<dyn Game + Send + Sync>,
    f: usize,
    modes: Vec<AgentMode>,
}

impl std::fmt::Debug for AuthorityCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuthorityCluster")
            .field("n", &self.modes.len())
            .field("f", &self.f)
            .field("modes", &self.modes)
            .finish_non_exhaustive()
    }
}

impl AuthorityCluster {
    /// An all-honest cluster playing `game` (one agent per game player)
    /// and tolerating `f` Byzantine agents.
    ///
    /// # Panics
    ///
    /// Same contracts as [`AuthorityProcess::new`]: `n > 3f`, `n ≤ 64`.
    pub fn new(game: Arc<dyn Game + Send + Sync>, f: usize) -> AuthorityCluster {
        let n = game.num_agents();
        assert!(n > 3 * f, "distributed authority requires n > 3f");
        assert!(n <= 64, "foul bitmask supports up to 64 agents");
        AuthorityCluster {
            game,
            f,
            modes: vec![AgentMode::Honest; n],
        }
    }

    /// Sets one agent's mode (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn mode(mut self, id: usize, mode: AgentMode) -> Self {
        self.modes[id] = mode;
        self
    }

    /// Replaces the whole mode vector.
    ///
    /// # Panics
    ///
    /// Panics unless `modes.len()` matches the game arity.
    #[must_use]
    pub fn modes(mut self, modes: Vec<AgentMode>) -> Self {
        assert_eq!(modes.len(), self.modes.len(), "one mode per agent");
        self.modes = modes;
        self
    }

    /// Number of agents.
    pub fn n(&self) -> usize {
        self.modes.len()
    }

    /// The fault threshold.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Pulses per play: the clock modulus `3R + 4` for this cluster's
    /// OM round count.
    pub fn play_len(&self) -> u64 {
        AuthorityProcess::schedule_len(OmConsensus::new(0, self.n(), self.f).rounds())
    }

    /// Constructs processor `id`, deriving its nonce stream from `seed`
    /// (pass the run seed so sweeps vary commitment nonces per run).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn process(&self, id: usize, seed: u64) -> Box<dyn Process> {
        Box::new(AuthorityProcess::new(
            self.game.clone(),
            id,
            self.n(),
            self.f,
            self.modes[id],
            seed,
        ))
    }
}

/// Builds a distributed authority over a complete graph; returns the
/// simulation for inspection. Thin wiring over [`AuthorityCluster`].
pub fn build_authority_sim(
    game: Arc<dyn Game + Send + Sync>,
    modes: Vec<AgentMode>,
    f: usize,
    seed: u64,
) -> Simulation {
    let cluster = AuthorityCluster::new(game, f).modes(modes);
    Simulation::builder(Topology::complete(cluster.n()))
        .seed(seed)
        .build_with(|id| cluster.process(id.index(), seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_game_theory::game::ClosureGame;

    /// A 4-agent, 2-action congestion game: cost = #agents on my resource.
    fn congestion() -> Arc<dyn Game + Send + Sync> {
        Arc::new(ClosureGame::new(
            "cong4",
            4,
            vec![2, 2, 2, 2],
            |agent, p| {
                let mine = p.action(agent);
                p.actions().iter().filter(|&&a| a == mine).count() as f64
            },
        ))
    }

    fn run_plays(modes: Vec<AgentMode>, pulses: u64, seed: u64) -> Simulation {
        let mut sim = build_authority_sim(congestion(), modes, 1, seed);
        sim.run(pulses);
        sim
    }

    fn records(sim: &Simulation, i: usize) -> &[PlayRecord] {
        sim.process_as::<AuthorityProcess>(ProcessId(i))
            .unwrap()
            .records()
    }

    #[test]
    fn honest_plays_complete_and_agree() {
        let n = 4;
        let modulus = AuthorityProcess::schedule_len(OmConsensus::new(0, n, 1).rounds());
        let sim = run_plays(vec![AgentMode::Honest; n], modulus * 4 + 2, 3);
        let r0 = records(&sim, 0);
        assert!(r0.len() >= 2, "plays completed: {}", r0.len());
        for i in 1..n {
            assert_eq!(records(&sim, i), r0, "identical play records everywhere");
        }
        assert!(r0.iter().all(|rec| rec.fouls == 0), "no honest fouls");
    }

    #[test]
    fn worst_responder_is_caught_and_disconnected() {
        let n = 4;
        let modulus = AuthorityProcess::schedule_len(OmConsensus::new(0, n, 1).rounds());
        let modes = vec![
            AgentMode::Honest,
            AgentMode::Honest,
            AgentMode::Honest,
            AgentMode::WorstResponse,
        ];
        let sim = run_plays(modes, modulus * 4 + 2, 5);
        // Play 0 has no previous outcome (no best-response obligation);
        // play 1 exposes the worst responder.
        let r0 = records(&sim, 0);
        assert!(r0.len() >= 2);
        assert!(
            r0.iter().any(|rec| rec.fouls & (1 << 3) != 0),
            "agent 3 flagged: {r0:?}"
        );
        for i in 0..3 {
            let p = sim.process_as::<AuthorityProcess>(ProcessId(i)).unwrap();
            assert!(p.punished()[3], "agent 3 disconnected at p{i}");
            assert!(!p.punished()[i], "honest agents stay");
        }
    }

    #[test]
    fn equivocal_reveal_is_caught() {
        let n = 4;
        let modulus = AuthorityProcess::schedule_len(OmConsensus::new(0, n, 1).rounds());
        let modes = vec![
            AgentMode::Honest,
            AgentMode::EquivocalReveal,
            AgentMode::Honest,
            AgentMode::Honest,
        ];
        let sim = run_plays(modes, modulus * 3 + 2, 7);
        let r0 = records(&sim, 0);
        assert!(!r0.is_empty());
        assert!(
            r0[0].fouls & (1 << 1) != 0,
            "bad opening flagged in the first play: {r0:?}"
        );
    }

    #[test]
    fn mute_agent_is_flagged_but_system_continues() {
        let n = 4;
        let modulus = AuthorityProcess::schedule_len(OmConsensus::new(0, n, 1).rounds());
        let modes = vec![
            AgentMode::Honest,
            AgentMode::Honest,
            AgentMode::Honest,
            AgentMode::Mute,
        ];
        let sim = run_plays(modes, modulus * 4 + 2, 9);
        let r0 = records(&sim, 0);
        assert!(r0.len() >= 2, "plays continue");
        assert!(r0[0].fouls & (1 << 3) != 0, "mute agent flagged");
        // Later plays still complete among the survivors.
        assert!(r0.last().unwrap().fouls & 0b0111 == 0);
    }

    #[test]
    fn fault_threshold_gates_false_accusations() {
        // One Byzantine agent frames agent 0 in every foul agreement.
        // With f = 1, its lone vote is below the f+1 conviction quorum
        // and agent 0 survives; with f = 0 the same single accusation
        // convicts — resilience degrades with the threshold exactly as
        // the paper states it. (Regression: `f` used to be dead state,
        // so both configurations behaved identically.)
        let n = 4;
        for (f, framed) in [(1usize, false), (0usize, true)] {
            let modulus = AuthorityProcess::schedule_len(OmConsensus::new(0, n, f).rounds());
            let modes = vec![
                AgentMode::Honest,
                AgentMode::Honest,
                AgentMode::Honest,
                AgentMode::Framer,
            ];
            let mut sim = build_authority_sim(congestion(), modes, f, 13);
            sim.run(modulus * 3 + 2);
            let r1 = records(&sim, 1);
            assert!(r1.len() >= 2, "plays complete at f={f}");
            assert_eq!(
                r1.iter().any(|rec| rec.fouls & 1 != 0),
                framed,
                "agent 0 framed iff f=0 (f={f}): {r1:?}"
            );
            let convictions = r1.iter().filter(|rec| rec.fouls & 1 != 0).count();
            assert!(
                convictions <= 1,
                "a persistent accuser must not re-stamp the foul into \
                 later records (f={f}): {r1:?}"
            );
            for i in 1..3 {
                let p = sim.process_as::<AuthorityProcess>(ProcessId(i)).unwrap();
                assert_eq!(p.punished()[0], framed, "p{i} punished agent 0 (f={f})");
            }
        }
    }

    #[test]
    fn out_of_range_reveal_is_quarantined_not_laundered() {
        // A reveal naming an action outside the agent's space must be
        // quarantined as foul evidence — never silently become the null
        // action in the outcome. (Regression: it used to sit in
        // `reveals` and be mapped to 0 with no foul whenever the foul
        // agreement had not decided.)
        let mut p = AuthorityProcess::new(congestion(), 0, 4, 1, AgentMode::Honest, 1);
        p.harvest_reveal(2, 9, Opening::from_nonce([0u8; 32]));
        assert_eq!(p.play.invalid, 1 << 2, "quarantined, not stored");
        assert!(!p.play.reveals.contains_key(&2));
        assert!(
            p.local_foul_mask() & (1 << 2) != 0,
            "invalid reveal is proposed as a foul"
        );
        // Conviction flows only through the agreed quorum: with BA 3
        // undecided the executive must NOT punish unilaterally (a
        // selectively delivered reveal would otherwise split honest
        // executives' state) — but the quarantine still keeps the
        // invalid action out of the outcome.
        p.conclude_play();
        let rec = p.records().last().unwrap();
        assert_eq!(rec.outcome.action(2), 0, "never adopted as an outcome");
        assert!(!p.punished()[2], "no unilateral conviction");
        // An in-range reveal still lands in the outcome path.
        p.harvest_reveal(1, 1, Opening::from_nonce([1u8; 32]));
        assert_eq!(p.play.reveals.get(&1).map(|(a, _)| *a), Some(1));
    }

    #[test]
    fn out_of_range_revealer_is_convicted_by_quorum() {
        // End to end: agent 3 commits to (and faithfully reveals) an
        // action outside its space, so the commitment verifies and only
        // the range audit can catch it. Every honest auditor proposes
        // the foul, the quorum convicts, and the outcome records the
        // null action — identically everywhere.
        let n = 4;
        let modulus = AuthorityProcess::schedule_len(OmConsensus::new(0, n, 1).rounds());
        let modes = vec![
            AgentMode::Honest,
            AgentMode::Honest,
            AgentMode::Honest,
            AgentMode::OutOfRangeReveal,
        ];
        let sim = run_plays(modes, modulus * 3 + 2, 21);
        let r0 = records(&sim, 0);
        assert!(!r0.is_empty());
        assert_eq!(
            r0[0].fouls & (1 << 3),
            1 << 3,
            "convicted in play 0: {r0:?}"
        );
        assert_eq!(r0[0].outcome.action(3), 0, "never adopted as an outcome");
        for i in 0..3 {
            assert_eq!(records(&sim, i), r0, "identical play records at p{i}");
            let p = sim.process_as::<AuthorityProcess>(ProcessId(i)).unwrap();
            assert!(p.punished()[3], "agent 3 disconnected at p{i}");
        }
    }

    #[test]
    fn recovers_from_transient_fault() {
        let n = 4;
        let modulus = AuthorityProcess::schedule_len(OmConsensus::new(0, n, 1).rounds());
        let mut sim = build_authority_sim(congestion(), vec![AgentMode::Honest; n], 1, 11);
        sim.run(modulus * 2);
        sim.inject(&TransientFault::total(n, 0xFA11));
        // Give the clock time to re-synchronize, then verify fresh plays
        // complete identically everywhere.
        sim.run(modulus * 60);
        let len_before: Vec<usize> = (0..n).map(|i| records(&sim, i).len()).collect();
        sim.run(modulus * 3);
        for (i, &before) in len_before.iter().enumerate() {
            assert!(records(&sim, i).len() > before, "plays resumed at p{i}");
        }
        // Post-recovery records agree on the last 2 entries.
        let tails: Vec<Vec<PlayRecord>> = (0..n)
            .map(|i| {
                let r = records(&sim, i);
                r[r.len().saturating_sub(2)..].to_vec()
            })
            .collect();
        assert!(tails.windows(2).all(|w| w[0] == w[1]), "{tails:?}");
    }
}

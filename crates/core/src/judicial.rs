//! The judicial service: auditing plays and naming fouls.
//!
//! §3.2 requires three guarantees, each of which becomes a check here:
//!
//! 1. **Legitimate action choice** — every action is drawn from the agent's
//!    applicable set `Πᵢ` ([`Verdict::IllegalAction`]);
//! 2. **Private and simultaneous action choice** — realized by Blum
//!    commit–reveal; violations surface as missing/invalid commitments or
//!    reveals;
//! 3. **Foul plays** — an action that is not a best response to the
//!    previous play's profile ([`Verdict::NotBestResponse`]).
//!
//! §5.3 adds the mixed-strategy audit: the revealed action of every round
//! must equal the output of the agent's *committed* PRG seed for its
//! claimed strategy ([`Verdict::SeedMismatch`]), and the action must lie in
//! the claimed support ([`Verdict::OutsideClaimedSupport`]).

use ga_crypto::commitment::{Commitment, Opening};
use ga_crypto::prg::{CommittedPrg, SeedReveal};
use ga_crypto::CryptoError;
use ga_game_theory::best_response::best_responses;
use ga_game_theory::game::Game;
use ga_game_theory::profile::PureProfile;

/// The judicial service's per-agent finding for one play.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Played by the rules.
    Honest,
    /// Action outside the agent's applicable set `Πᵢ`.
    IllegalAction,
    /// No commitment was published in the commit phase.
    MissingCommitment,
    /// No reveal was published in the reveal phase.
    MissingReveal,
    /// The reveal did not open the commitment (equivocation).
    BadOpening,
    /// Pure-strategy foul play: not a best response to the previous
    /// profile (§3.2 requirement 3).
    NotBestResponse,
    /// Mixed-strategy audit: the action is not in the support of the
    /// claimed strategy (a §5.1-style hidden manipulative strategy).
    OutsideClaimedSupport,
    /// Mixed-strategy audit: the revealed seed does not reproduce the
    /// played actions (§5.3).
    SeedMismatch,
    /// The agent was already disconnected and should not have acted.
    AlreadyPunished,
}

impl Verdict {
    /// Whether this verdict keeps the agent in good standing.
    pub fn is_honest(self) -> bool {
        self == Verdict::Honest
    }
}

/// One agent's submission for a play: the commitment from the commit phase
/// and the reveal from the reveal phase.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Commitment published before anyone revealed (None = silent).
    pub commitment: Option<Commitment>,
    /// Revealed `(action, opening)` (None = refused to reveal).
    pub reveal: Option<(usize, Opening)>,
    /// The mixed strategy the agent claims to be playing, if any
    /// (pure-strategy agents pass `None`).
    pub claimed_strategy: Option<Vec<f64>>,
}

/// Encodes an action for commitment (shared by agents and auditors so an
/// honest commit always verifies).
pub fn action_bytes(action: usize) -> [u8; 8] {
    (action as u64).to_be_bytes()
}

/// Audits one play of `game`.
///
/// `previous` is the PSP of the previous play (if any): the §3.2 foul-play
/// criterion judges each action as a best response to it. `punished` marks
/// agents already disconnected. Returns one [`Verdict`] per agent.
pub fn audit_play(
    game: &dyn Game,
    previous: Option<&PureProfile>,
    submissions: &[Submission],
    punished: &[bool],
) -> Vec<Verdict> {
    audit_play_with(game, previous, submissions, punished, true)
}

/// [`audit_play`] with a configurable cadence: when `check_support` is
/// `false`, the per-play support check for mixed strategies is skipped —
/// detection of hidden manipulations is deferred to the end-of-epoch seed
/// audit ([`audit_epoch`]), the efficiency trade-off §5.3 suggests
/// ("commit to the private seed … reveal at the end of the sequence of
/// rounds and then audit").
pub fn audit_play_with(
    game: &dyn Game,
    previous: Option<&PureProfile>,
    submissions: &[Submission],
    punished: &[bool],
    check_support: bool,
) -> Vec<Verdict> {
    submissions
        .iter()
        .enumerate()
        .map(|(agent, s)| audit_one(game, previous, agent, s, punished, check_support))
        .collect()
}

fn audit_one(
    game: &dyn Game,
    previous: Option<&PureProfile>,
    agent: usize,
    s: &Submission,
    punished: &[bool],
    check_support: bool,
) -> Verdict {
    if punished.get(agent).copied().unwrap_or(false) {
        // A disconnected agent that still manages to act is flagged; a
        // silent one is simply skipped (still flagged as punished so the
        // executive keeps ignoring it).
        return Verdict::AlreadyPunished;
    }
    let Some(commitment) = s.commitment else {
        return Verdict::MissingCommitment;
    };
    let Some((action, opening)) = s.reveal else {
        return Verdict::MissingReveal;
    };
    match commitment.verify(&action_bytes(action), &opening) {
        Ok(()) => {}
        Err(CryptoError::BadOpening) => return Verdict::BadOpening,
        Err(_) => return Verdict::BadOpening,
    }
    if action >= game.num_actions(agent) {
        return Verdict::IllegalAction;
    }
    if let Some(claimed) = &s.claimed_strategy {
        // Mixed play: the action must be inside the claimed support; the
        // deeper seed audit happens at epoch end (audit_epoch). Under the
        // deferred cadence the support check waits for the epoch audit too.
        if check_support && claimed.get(action).copied().unwrap_or(0.0) <= 0.0 {
            return Verdict::OutsideClaimedSupport;
        }
    } else if let Some(prev) = previous {
        // Pure play: best-response discipline.
        if !best_responses(game, agent, prev).contains(&action) {
            return Verdict::NotBestResponse;
        }
    }
    Verdict::Honest
}

/// End-of-epoch mixed-strategy audit (§5.3): verify that `transcript`
/// (per-round `(claimed weights, played action)`) is exactly what the
/// committed seed produces.
pub fn audit_epoch(
    seed_commitment: Commitment,
    reveal: SeedReveal,
    transcript: &[(Vec<f64>, usize)],
) -> Verdict {
    match CommittedPrg::verify_samples(seed_commitment, reveal, transcript) {
        Ok(()) => Verdict::Honest,
        Err(CryptoError::BadOpening) => Verdict::BadOpening,
        Err(CryptoError::SeedMismatch) => Verdict::SeedMismatch,
        Err(_) => Verdict::SeedMismatch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_crypto::commitment::Commitment;
    use ga_crypto::prg::CommittedPrg;
    use ga_games::prisoners_dilemma;

    fn commit_to(action: usize, nonce_byte: u8) -> (Commitment, Opening) {
        Commitment::commit(&action_bytes(action), [nonce_byte; 32])
    }

    fn honest_submission(action: usize, nonce: u8) -> Submission {
        let (c, o) = commit_to(action, nonce);
        Submission {
            commitment: Some(c),
            reveal: Some((action, o)),
            claimed_strategy: None,
        }
    }

    #[test]
    fn honest_pure_play_passes() {
        let g = prisoners_dilemma();
        let prev = PureProfile::new(vec![1, 1]);
        let subs = vec![honest_submission(1, 1), honest_submission(1, 2)];
        let verdicts = audit_play(&g, Some(&prev), &subs, &[false, false]);
        assert!(verdicts.iter().all(|v| v.is_honest()));
    }

    #[test]
    fn cooperation_after_defection_is_a_foul() {
        // Best response to (D,D) is D; playing C is the §3.2 foul.
        let g = prisoners_dilemma();
        let prev = PureProfile::new(vec![1, 1]);
        let subs = vec![honest_submission(0, 1), honest_submission(1, 2)];
        let verdicts = audit_play(&g, Some(&prev), &subs, &[false, false]);
        assert_eq!(verdicts[0], Verdict::NotBestResponse);
        assert_eq!(verdicts[1], Verdict::Honest);
    }

    #[test]
    fn first_round_has_no_best_response_obligation() {
        let g = prisoners_dilemma();
        let subs = vec![honest_submission(0, 1), honest_submission(1, 2)];
        let verdicts = audit_play(&g, None, &subs, &[false, false]);
        assert!(verdicts.iter().all(|v| v.is_honest()));
    }

    #[test]
    fn equivocation_caught_by_opening() {
        let g = prisoners_dilemma();
        let (c, o) = commit_to(0, 1); // committed to cooperate...
        let subs = vec![
            Submission {
                commitment: Some(c),
                reveal: Some((1, o)), // ...revealed defect
                claimed_strategy: None,
            },
            honest_submission(1, 2),
        ];
        let verdicts = audit_play(&g, None, &subs, &[false, false]);
        assert_eq!(verdicts[0], Verdict::BadOpening);
    }

    #[test]
    fn missing_phases_are_fouls() {
        let g = prisoners_dilemma();
        let (c, _) = commit_to(0, 1);
        let subs = vec![
            Submission {
                commitment: None,
                reveal: None,
                claimed_strategy: None,
            },
            Submission {
                commitment: Some(c),
                reveal: None,
                claimed_strategy: None,
            },
        ];
        let verdicts = audit_play(&g, None, &subs, &[false, false]);
        assert_eq!(verdicts[0], Verdict::MissingCommitment);
        assert_eq!(verdicts[1], Verdict::MissingReveal);
    }

    #[test]
    fn illegal_action_caught() {
        let g = prisoners_dilemma();
        let subs = vec![honest_submission(7, 1), honest_submission(1, 2)];
        let verdicts = audit_play(&g, None, &subs, &[false, false]);
        assert_eq!(verdicts[0], Verdict::IllegalAction);
    }

    #[test]
    fn outside_claimed_support_caught() {
        use ga_games::matching_pennies::{manipulated_matching_pennies, MANIPULATE};
        let g = manipulated_matching_pennies();
        let (c, o) = commit_to(MANIPULATE, 3);
        let subs = vec![
            honest_submission(0, 1),
            Submission {
                commitment: Some(c),
                reveal: Some((MANIPULATE, o)),
                claimed_strategy: Some(vec![0.5, 0.5, 0.0]), // claims to mix H/T
            },
        ];
        let verdicts = audit_play(&g, None, &subs, &[false, false]);
        assert_eq!(verdicts[1], Verdict::OutsideClaimedSupport);
    }

    #[test]
    fn punished_agents_stay_flagged() {
        let g = prisoners_dilemma();
        let subs = vec![honest_submission(1, 1), honest_submission(1, 2)];
        let verdicts = audit_play(&g, None, &subs, &[true, false]);
        assert_eq!(verdicts[0], Verdict::AlreadyPunished);
        assert_eq!(verdicts[1], Verdict::Honest);
    }

    #[test]
    fn epoch_audit_honest_and_cheating() {
        let mut cp = CommittedPrg::new([7u8; 32], [9u8; 32]);
        let w = vec![0.5, 0.5];
        let mut transcript: Vec<(Vec<f64>, usize)> =
            (0..8).map(|_| (w.clone(), cp.sample(&w))).collect();
        assert_eq!(
            audit_epoch(cp.commitment(), cp.reveal(), &transcript),
            Verdict::Honest
        );
        transcript[3].1 = 1 - transcript[3].1;
        assert_eq!(
            audit_epoch(cp.commitment(), cp.reveal(), &transcript),
            Verdict::SeedMismatch
        );
    }
}

//! Supervised repeated resource allocation — §6 end to end.
//!
//! Corollary 4 / Theorem 5 are conditional on "a game authority that
//! supervises the RRA game". This module is that coupling: every round is
//! a full authority play of the current *stage game* (loads + contention):
//!
//! 1. each agent commits to its demand `(resource, units)`;
//! 2. reveals are audited: `units == 1` (*legitimate action choice* —
//!    §3.2 req. 1), the opening matches, and the resource is a best
//!    response to the previous round's profile in today's stage game
//!    (§3.2 req. 3);
//! 3. fouls are punished (disconnection), and only surviving agents'
//!    demands hit the loads.
//!
//! With the authority in place the measured dynamics inherit the paper's
//! bounds; without it a multi-demand cheater tears through Lemma 6's
//! envelope (compare [`rra_round`](SupervisedRra::play_round) runs with
//! `audits: false`).

use ga_crypto::commitment::Commitment;
use ga_crypto::prg::Prg;
use ga_game_theory::best_response::{best_response, best_responses};
use ga_game_theory::profile::PureProfile;
use ga_games::resource_allocation::RraStageGame;

use crate::executive::{Executive, Punishment};
use crate::judicial::Verdict;

/// How an agent behaves in the supervised RRA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RraAgent {
    /// Plays a best response to the previous profile with one unit.
    Honest,
    /// Places `units` demands on the most-loaded resource (violating the
    /// single-unit rule whenever `units != 1`).
    Cheater {
        /// Demands placed per round.
        units: u32,
    },
    /// Always demands the same resource with one unit — legal in form, but
    /// a *foul play* (§3.2 req. 3) as soon as that resource stops being a
    /// best response.
    Stubborn {
        /// The fixated resource.
        resource: usize,
    },
}

/// A demand: the committed-and-revealed action of one RRA round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Demand {
    /// Chosen resource.
    pub resource: usize,
    /// Units placed (legitimate plays have exactly 1).
    pub units: u32,
}

fn demand_bytes(d: Demand) -> [u8; 12] {
    let mut out = [0u8; 12];
    out[..8].copy_from_slice(&(d.resource as u64).to_be_bytes());
    out[8..].copy_from_slice(&d.units.to_be_bytes());
    out
}

/// Per-round outcome of the supervised dynamics.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedRound {
    /// Round number (1-based after completion).
    pub k: u64,
    /// Verdicts of this round's audit.
    pub verdicts: Vec<Verdict>,
    /// Agents newly disconnected.
    pub punished: Vec<usize>,
    /// Loads after the round.
    pub loads: Vec<u64>,
    /// Load gap Δ(k).
    pub gap: u64,
}

/// The supervised RRA driver.
#[derive(Debug)]
pub struct SupervisedRra {
    n: usize,
    loads: Vec<u64>,
    agents: Vec<RraAgent>,
    executive: Executive,
    prev_profile: Option<PureProfile>,
    nonce_prgs: Vec<Prg>,
    round: u64,
    /// When false, the judicial service looks away (the unsupervised
    /// baseline).
    audits: bool,
}

impl SupervisedRra {
    /// Creates the driver for `agents` over `b` resources.
    ///
    /// # Panics
    ///
    /// Panics if `b < 2` or no agents.
    pub fn new(agents: Vec<RraAgent>, b: usize, audits: bool, seed: u64) -> SupervisedRra {
        assert!(b >= 2, "need at least two resources");
        assert!(!agents.is_empty(), "need at least one agent");
        let n = agents.len();
        let nonce_prgs = (0..n)
            .map(|i| Prg::from_seed_material(b"ga-rra-nonce", seed ^ (i as u64) << 20))
            .collect();
        SupervisedRra {
            n,
            loads: vec![0; b],
            agents,
            executive: Executive::new(n, Punishment::Disconnect),
            prev_profile: None,
            nonce_prgs,
            round: 0,
            audits,
        }
    }

    /// Current loads.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Load gap Δ(k).
    pub fn gap(&self) -> u64 {
        let max = self.loads.iter().max().copied().unwrap_or(0);
        let min = self.loads.iter().min().copied().unwrap_or(0);
        max - min
    }

    /// The executive ledger.
    pub fn executive(&self) -> &Executive {
        &self.executive
    }

    /// Plays one supervised round.
    pub fn play_round(&mut self) -> SupervisedRound {
        let stage = RraStageGame::new(self.n, self.loads.clone());
        let most = (0..self.loads.len())
            .max_by_key(|&a| self.loads[a])
            .expect("b ≥ 2");

        // Choice + commit + reveal, per agent.
        let mut demands: Vec<Option<Demand>> = Vec::with_capacity(self.n);
        let mut commitments: Vec<Option<(Commitment, ga_crypto::commitment::Opening)>> =
            Vec::with_capacity(self.n);
        for i in 0..self.n {
            if !self.executive.is_active(i) {
                demands.push(None);
                commitments.push(None);
                continue;
            }
            let demand = match self.agents[i] {
                RraAgent::Honest => {
                    let resource = match &self.prev_profile {
                        Some(prev) => best_response(&stage, i, prev),
                        None => i % self.loads.len(),
                    };
                    Demand { resource, units: 1 }
                }
                RraAgent::Cheater { units } => Demand {
                    resource: most,
                    units,
                },
                RraAgent::Stubborn { resource } => Demand {
                    resource: resource.min(self.loads.len() - 1),
                    units: 1,
                },
            };
            let nonce = self.nonce_prgs[i].next_block();
            let pair = Commitment::commit(&demand_bytes(demand), nonce);
            demands.push(Some(demand));
            commitments.push(Some(pair));
        }

        // Judicial audit.
        let verdicts: Vec<Verdict> = (0..self.n)
            .map(|i| {
                if !self.executive.is_active(i) {
                    return Verdict::AlreadyPunished;
                }
                if !self.audits {
                    return Verdict::Honest;
                }
                let demand = demands[i].expect("active agents demanded");
                let (commitment, opening) = commitments[i].as_ref().expect("committed");
                if commitment.verify(&demand_bytes(demand), opening).is_err() {
                    return Verdict::BadOpening;
                }
                if demand.units != 1 || demand.resource >= self.loads.len() {
                    return Verdict::IllegalAction; // §3.2 requirement 1
                }
                if let Some(prev) = &self.prev_profile {
                    if !best_responses(&stage, i, prev).contains(&demand.resource) {
                        return Verdict::NotBestResponse; // §3.2 requirement 3
                    }
                }
                Verdict::Honest
            })
            .collect();
        let punished = self.executive.apply_verdicts(&verdicts);

        // Executive: only surviving agents' demands land. (Punishment is
        // detected from this round's reveals, so the offending round's
        // demand still lands — the authority repairs from the next round.)
        let mut profile_actions = vec![0usize; self.n];
        for i in 0..self.n {
            let Some(demand) = demands[i] else { continue };
            profile_actions[i] = demand.resource.min(self.loads.len() - 1);
            self.loads[profile_actions[i]] += u64::from(demand.units);
        }
        self.prev_profile = Some(PureProfile::new(profile_actions));
        self.round += 1;

        SupervisedRound {
            k: self.round,
            verdicts,
            punished,
            loads: self.loads.clone(),
            gap: self.gap(),
        }
    }

    /// Plays `rounds` rounds, returning every round's record.
    pub fn play(&mut self, rounds: u64) -> Vec<SupervisedRound> {
        (0..rounds).map(|_| self.play_round()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_population_stays_in_the_envelope() {
        let n = 5;
        let mut rra = SupervisedRra::new(vec![RraAgent::Honest; n], 3, true, 1);
        for r in rra.play(300) {
            assert!(r.punished.is_empty(), "no honest fouls: {:?}", r.verdicts);
            assert!(r.gap < 2 * n as u64, "Δ({}) = {}", r.k, r.gap);
        }
    }

    #[test]
    fn cheater_is_caught_in_round_one_and_dynamics_recover() {
        let n = 5;
        let mut agents = vec![RraAgent::Honest; n];
        agents[4] = RraAgent::Cheater { units: 8 };
        let mut rra = SupervisedRra::new(agents, 3, true, 2);
        let rounds = rra.play(200);
        assert_eq!(rounds[0].verdicts[4], Verdict::IllegalAction);
        assert_eq!(rounds[0].punished, vec![4]);
        assert!(!rra.executive().is_active(4));
        // One cheated round lands; honest water-filling then re-absorbs
        // the skew back into the envelope.
        let last = rounds.last().unwrap();
        assert!(
            last.gap < 2 * n as u64,
            "Δ recovered: {} (loads {:?})",
            last.gap,
            last.loads
        );
    }

    #[test]
    fn unsupervised_cheater_diverges() {
        let n = 5;
        let mut agents = vec![RraAgent::Honest; n];
        agents[4] = RraAgent::Cheater { units: 8 };
        let mut rra = SupervisedRra::new(agents, 3, false, 2);
        let rounds = rra.play(200);
        assert!(rounds.iter().all(|r| r.punished.is_empty()));
        let last = rounds.last().unwrap();
        assert!(
            last.gap > 2 * n as u64 - 1,
            "unsupervised gap diverges: {}",
            last.gap
        );
    }

    #[test]
    fn honest_agents_never_flagged_even_with_cheater_present() {
        let n = 4;
        let mut agents = vec![RraAgent::Honest; n];
        agents[0] = RraAgent::Cheater { units: 3 };
        let mut rra = SupervisedRra::new(agents, 2, true, 3);
        for r in rra.play(50) {
            for i in 1..n {
                assert!(
                    r.verdicts[i].is_honest() || r.verdicts[i] == Verdict::AlreadyPunished,
                    "honest p{i} flagged: {:?}",
                    r.verdicts
                );
            }
        }
    }

    #[test]
    fn stubborn_agent_is_caught_as_non_best_response() {
        // Fixating on one resource is legal in form (one unit) but becomes
        // a §3.2 foul play once that resource's backlog makes any honest
        // agent switch — the best-response audit's job.
        let n = 4;
        let mut agents = vec![RraAgent::Honest; n];
        agents[3] = RraAgent::Stubborn { resource: 0 };
        let mut rra = SupervisedRra::new(agents, 2, true, 4);
        let rounds = rra.play(30);
        let caught = rounds
            .iter()
            .any(|r| r.verdicts[3] == Verdict::NotBestResponse);
        assert!(caught, "fixation is a foul play eventually");
    }
}

//! Self-stabilization integration: Theorem 1's composition and the full
//! distributed authority, recovering from arbitrary configurations.

use std::sync::Arc;

use game_authority_suite::agreement::consensus::OmConsensus;
use game_authority_suite::agreement::traits::BaInstance;
use game_authority_suite::authority::distributed::{
    build_authority_sim, AgentMode, AuthorityProcess,
};
use game_authority_suite::clocksync::harness::{measure_convergence_with, run_ssba};
use game_authority_suite::game_theory::game::ClosureGame;
use game_authority_suite::simnet::fault::TransientFault;
use game_authority_suite::simnet::ids::ProcessId;

#[test]
fn clock_sync_converges_from_arbitrary_states_across_seeds() {
    for seed in [1u64, 2, 3] {
        let pulses = measure_convergence_with(4, 1, 1, 8, seed, 200_000)
            .expect("converges within the budget");
        assert!(pulses < 200_000);
    }
}

#[test]
fn ssba_closure_after_midrun_fault() {
    let report = run_ssba(4, 1, 1, 1200, Some(150), 77);
    assert!(
        report.common_suffix(2),
        "identical post-recovery agreements: {:?}",
        report.logs
    );
}

#[test]
fn distributed_authority_recovers_and_keeps_agreeing() {
    let game = Arc::new(ClosureGame::new("cong", 4, vec![2, 2, 2, 2], |agent, p| {
        let mine = p.action(agent);
        p.actions().iter().filter(|&&a| a == mine).count() as f64
    }));
    let modulus = AuthorityProcess::schedule_len(OmConsensus::new(0, 4, 1).rounds());
    let mut sim = build_authority_sim(game, vec![AgentMode::Honest; 4], 1, 1234);

    sim.run(modulus * 3);
    sim.inject(&TransientFault::total(4, 0xBEEF));
    sim.run(modulus * 50);

    let counts: Vec<usize> = (0..4)
        .map(|i| {
            sim.process_as::<AuthorityProcess>(ProcessId(i))
                .unwrap()
                .records()
                .len()
        })
        .collect();
    sim.run(modulus * 3);
    for (i, &before) in counts.iter().enumerate() {
        let now = sim
            .process_as::<AuthorityProcess>(ProcessId(i))
            .unwrap()
            .records()
            .len();
        assert!(now > before, "plays keep completing at p{i}");
    }
    // Latest plays agree across all processors.
    let last: Vec<_> = (0..4)
        .map(|i| {
            sim.process_as::<AuthorityProcess>(ProcessId(i))
                .unwrap()
                .records()
                .last()
                .cloned()
                .unwrap()
        })
        .collect();
    assert!(last.windows(2).all(|w| w[0] == w[1]), "{last:?}");
}

//! Self-stabilization integration: Theorem 1's composition and the full
//! distributed authority, recovering from arbitrary configurations.
//!
//! The experiments themselves live in the `stabilize` scenario suite
//! ([`scenario::stabilize`]) — each historical test is now a thin run of
//! its ported scenario, so the same definitions back `scenario run
//! --suite stabilize` (sweeps, percentiles, byte-identical parallel
//! summaries) and this tier-1 gate.

use game_authority_suite::scenario::stabilize;

#[test]
fn clock_sync_converges_from_arbitrary_states_across_seeds() {
    let port = stabilize::clock_convergence_port();
    for seed in [1u64, 2, 3] {
        let record = port.run(seed);
        assert!(record.verdict.passed(), "seed {seed}: {:?}", record.verdict);
        let pulses = record
            .get_metric("convergence_pulses")
            .expect("uncensored runs report their convergence time");
        assert!(pulses < 200_000.0);
    }
}

#[test]
fn ssba_closure_after_midrun_fault() {
    let record = stabilize::ssba_closure_port().run(77);
    assert!(
        record.verdict.passed(),
        "identical post-recovery agreements: {:?}",
        record.verdict
    );
    assert!(record.get_metric("agreements").is_some_and(|a| a >= 2.0));
}

#[test]
fn distributed_authority_recovers_and_keeps_agreeing() {
    let record = stabilize::authority_recovery_port().run(1234);
    assert!(record.verdict.passed(), "{:?}", record.verdict);
    assert_eq!(
        record.get_metric("censored"),
        Some(0.0),
        "the cluster re-enters the agreeing state within the budget"
    );
    assert!(
        record.get_metric("plays").is_some_and(|p| p > 3.0),
        "plays keep completing after recovery"
    );
}

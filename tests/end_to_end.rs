//! Cross-crate integration: the complete middleware pipeline.
//!
//! Election → supervised play → manipulation → audit → punishment, across
//! `ga-game-theory`, `ga-games`, `ga-crypto` and `game-authority`.

use game_authority_suite::authority::agent::Behavior;
use game_authority_suite::authority::authority::{Authority, AuthorityConfig};
use game_authority_suite::authority::executive::Punishment;
use game_authority_suite::authority::judicial::Verdict;
use game_authority_suite::authority::legislative::{tally, Ballot, VotingRule};
use game_authority_suite::game_theory::profile::PureProfile;
use game_authority_suite::games::matching_pennies::{manipulated_matching_pennies, MANIPULATE};
use game_authority_suite::games::prisoners_dilemma;

#[test]
fn elect_then_play_then_punish() {
    // 1. The society elects which game to play.
    let ballots = vec![
        Ballot::new(vec![0, 1]),
        Ballot::new(vec![0, 1]),
        Ballot::new(vec![1, 0]),
    ];
    let winner = tally(VotingRule::Plurality, &ballots, 2).unwrap();
    assert_eq!(winner, 0, "prisoner's dilemma elected");

    // 2. The elected game runs under the authority.
    let game = prisoners_dilemma();
    let mut authority = Authority::new(
        &game,
        vec![Behavior::honest_pure(0), Behavior::honest_pure(0)],
        AuthorityConfig::default(),
    );
    let reports = authority.play(6);
    assert!(reports
        .iter()
        .all(|r| r.verdicts.iter().all(|v| v.is_honest())));
    // Locked into the unique PNE from play 1 on.
    assert_eq!(
        reports[5].outcome.as_ref().unwrap(),
        &PureProfile::new(vec![1, 1])
    );

    // 3. The outcome log is tamper-evident and complete.
    assert_eq!(authority.executive().log().len(), 6);
    assert!(authority.executive().log().verify().is_ok());
}

#[test]
fn fig1_manipulation_full_pipeline() {
    let game = manipulated_matching_pennies();
    let mut authority = Authority::new(
        &game,
        vec![
            Behavior::honest_mixed(vec![0.5, 0.5]),
            Behavior::hidden_manipulator(vec![0.5, 0.5, 0.0], MANIPULATE),
        ],
        AuthorityConfig::default(),
    );
    let r = authority.play_round();
    assert_eq!(r.verdicts[1], Verdict::OutsideClaimedSupport);
    assert!(!authority.executive().is_active(1));
    // The honest agent is never punished across many rounds.
    for r in authority.play(20) {
        assert!(r.verdicts[0].is_honest() || r.verdicts[0] == Verdict::AlreadyPunished);
        assert!(!r.punished.contains(&0));
    }
}

#[test]
fn fines_deter_while_keeping_agents_in_the_game() {
    let game = prisoners_dilemma();
    let mut authority = Authority::new(
        &game,
        vec![Behavior::honest_pure(1), Behavior::equivocator(0, 1)],
        AuthorityConfig {
            punishment: Punishment::Fine(10.0),
            ..AuthorityConfig::default()
        },
    );
    authority.play(5);
    assert!(authority.executive().is_active(1));
    assert_eq!(authority.executive().fine(1), 50.0);
    assert_eq!(authority.executive().offenses(1), 5);
}

#[test]
fn reputation_scheme_eventually_shuns() {
    let game = prisoners_dilemma();
    let mut authority = Authority::new(
        &game,
        vec![Behavior::honest_pure(1), Behavior::no_reveal(0)],
        AuthorityConfig {
            punishment: Punishment::Reputation {
                penalty: 3,
                threshold: 0,
                initial: 7,
            },
            ..AuthorityConfig::default()
        },
    );
    authority.play(4);
    assert!(
        !authority.executive().is_active(1),
        "shunned after 3 offenses"
    );
    assert_eq!(authority.executive().reputation(1), -2);
}

//! The paper's claims as executable assertions, via the experiment
//! library (`ga-bench`). These are the same computations the
//! `experiments` binary prints; here they gate CI.

use ga_bench::{e1_fig1, e2_pom_pennies, e3_rra, e5_virus, e6_overhead, e7_dynamics};

/// Fig. 1 and §5.1: the manipulation shifts (A, B) from (0, 0) to (−4, +4).
#[test]
fn claim_fig1_expected_profits() {
    let r = e1_fig1::run();
    assert_eq!(r.expected[0], (0.0, 0.0));
    assert_eq!(r.expected[1], (0.0, 0.0));
    assert_eq!(r.expected[2], (-4.0, 4.0));
}

/// §5.4: the authority reduces the price of malice — A's damage shrinks by
/// more than an order of magnitude and detection is immediate.
#[test]
fn claim_pom_reduction() {
    let r = e2_pom_pennies::run(100, 5);
    let unsupervised = &r.regimes[0];
    let supervised = &r.regimes[1];
    assert!(
        unsupervised.honest_payoff < -250.0,
        "≈ −4/round unsupervised"
    );
    assert_eq!(supervised.detected_at, Some(0));
    assert!(
        supervised.honest_payoff > -10.0,
        "damage capped at one play"
    );
}

/// Theorem 5 + Lemma 6: R(k) ≤ 1 + 2b/k and Δ(k) ≤ 2n−1 throughout; R→1.
#[test]
fn claim_theorem_5_and_lemma_6() {
    let points = e3_rra::run(&[(4, 2), (8, 4)], &[100, 2000], 17);
    for p in &points {
        assert!(p.bounds_held_throughout, "{p:?}");
    }
    let late = points.iter().find(|p| p.n == 8 && p.k == 2000).unwrap();
    assert!(late.ratio < 1.02, "asymptotically optimal: {}", late.ratio);
}

/// PoM in the virus inoculation game: grows with k unsupervised, collapses
/// to ≈1 supervised.
#[test]
fn claim_virus_pom() {
    let points = e5_virus::run(6, 1.0, 36.0, &[0, 4, 9]);
    assert!(points[1].pom_unsupervised > 1.2);
    assert!(points[2].pom_unsupervised > points[1].pom_unsupervised);
    for p in &points {
        assert!(p.pom_supervised < 1.2, "{p:?}");
    }
}

/// §3.3 protocol cost shapes: OM grows exponentially in bytes with n;
/// phase-king stays polynomial but needs more rounds.
#[test]
fn claim_overhead_shapes() {
    let points = e6_overhead::run(&[7, 13], 23);
    let om7 = points
        .iter()
        .find(|p| p.backend == ga_agreement::harness::Backend::Om && p.n == 7)
        .unwrap();
    let om13 = points
        .iter()
        .find(|p| p.backend == ga_agreement::harness::Backend::Om && p.n == 13)
        .unwrap();
    let pk13 = points
        .iter()
        .find(|p| p.backend == ga_agreement::harness::Backend::PhaseKing && p.n == 13)
        .unwrap();
    assert!(om13.bytes > 5 * om7.bytes, "exponential blowup");
    assert!(pk13.bytes < om13.bytes / 5, "phase-king stays polynomial");
    assert!(pk13.rounds > om13.rounds, "…at the cost of more rounds");
    assert!(points.iter().all(|p| p.agreement));
}

/// E7: cheating diverges the load gap; supervision restores the envelope.
#[test]
fn claim_dynamics_envelope() {
    let r = e7_dynamics::run(6, 3, &[500], 31);
    assert!(r.honest[0] <= r.envelope);
    assert!(r.cheated[0] > r.envelope);
    assert!(
        r.supervised[0] <= r.envelope + 6,
        "supervision restores order"
    );
}

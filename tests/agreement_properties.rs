//! Property-based tests of the Byzantine agreement substrate and the
//! cryptographic primitives — the invariants everything above relies on.

use ga_agreement::consensus::OmConsensus;
use ga_agreement::executor::{honest_agreement, run_pure};
use ga_agreement::harness::{run_consensus_with, Backend, Misbehavior};
use ga_agreement::king::PhaseKing;
use game_authority_suite::crypto::commitment::{Commitment, Opening};
use game_authority_suite::crypto::prg::{CommittedPrg, Prg};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Commitments bind: any differing value/nonce fails verification.
    #[test]
    fn commitment_binding(value in proptest::collection::vec(any::<u8>(), 0..64),
                          other in proptest::collection::vec(any::<u8>(), 0..64),
                          nonce in any::<[u8; 32]>(),
                          other_nonce in any::<[u8; 32]>()) {
        let (c, o) = Commitment::commit(&value, nonce);
        prop_assert!(c.verify(&value, &o).is_ok());
        if other != value {
            prop_assert!(c.verify(&other, &o).is_err());
        }
        if other_nonce != nonce {
            prop_assert!(c.verify(&value, &Opening::from_nonce(other_nonce)).is_err());
        }
    }

    /// The committed PRG audit accepts exactly the honest transcript.
    #[test]
    fn committed_prg_audit(seed in any::<[u8; 32]>(),
                           nonce in any::<[u8; 32]>(),
                           rounds in 1usize..24,
                           flip in 0usize..24) {
        let mut cp = CommittedPrg::new(seed, nonce);
        let w = vec![0.5, 0.5];
        let mut transcript: Vec<(Vec<f64>, usize)> =
            (0..rounds).map(|_| (w.clone(), cp.sample(&w))).collect();
        prop_assert!(CommittedPrg::verify_samples(cp.commitment(), cp.reveal(), &transcript).is_ok());
        let i = flip % rounds;
        transcript[i].1 = 1 - transcript[i].1;
        prop_assert!(CommittedPrg::verify_samples(cp.commitment(), cp.reveal(), &transcript).is_err());
    }

    /// OM consensus: agreement + validity under an arbitrary garbling
    /// single Byzantine processor, for n in 4..=7.
    #[test]
    fn om_agreement_under_garbling(n in 4usize..8,
                                   byz_seed in any::<u64>(),
                                   common in 1u64..100) {
        let byz = n - 1;
        let instances: Vec<OmConsensus> = (0..n).map(|me| OmConsensus::new(me, n, 1)).collect();
        let inputs: Vec<u64> = (0..n).map(|_| common).collect();
        let mut salt = byz_seed;
        let decided = run_pure(instances, &inputs, move |from: usize, r: u64, to: usize, _p: &[u8]| {
            if from == byz {
                salt = salt.wrapping_mul(6364136223846793005).wrapping_add(r ^ to as u64);
                Some(salt.to_be_bytes().to_vec())
            } else {
                None
            }
        });
        prop_assert!(honest_agreement(&decided, &[byz], Some(common)));
    }

    /// Phase-king: agreement under a garbling minority for n in 5..=9.
    #[test]
    fn phase_king_agreement(n in 5usize..10, inputs_seed in any::<u64>()) {
        let byz = n - 1;
        let instances: Vec<PhaseKing> = (0..n).map(|me| PhaseKing::new(me, n, 1)).collect();
        let mut x = inputs_seed;
        let inputs: Vec<u64> = (0..n).map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x % 3
        }).collect();
        let decided = run_pure(instances, &inputs, move |from: usize, r: u64, to: usize, _p: &[u8]| {
            (from == byz).then(|| vec![(r as u8) ^ to as u8; 3])
        });
        prop_assert!(honest_agreement(&decided, &[byz], None));
    }

    /// Deterministic PRG streams never collide across seeds (sanity over
    /// random pairs).
    #[test]
    fn prg_streams_distinct(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        prop_assume!(a != b);
        prop_assert_ne!(Prg::new(a).next_block(), Prg::new(b).next_block());
    }
}

#[test]
fn every_backend_tolerates_its_threshold_with_crashes() {
    for backend in Backend::ALL {
        for n in [7usize, 9] {
            let f = backend.max_faults(n).min(2);
            if f == 0 {
                continue;
            }
            let byz: Vec<usize> = (n - f..n).collect();
            let report = run_consensus_with(backend, n, f, &byz, Misbehavior::Crash, |_| 3, 99);
            assert!(report.agreement(), "{backend:?} n={n} f={f}");
            assert_eq!(report.decision(), Some(3), "{backend:?} validity");
        }
    }
}

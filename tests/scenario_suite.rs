//! Workspace-level checks of the scenario subsystem through the facade:
//! the paper suite carries all eight experiment ports and every shipped
//! suite passes its own verdicts.

use game_authority_suite::scenario::prelude::*;
use game_authority_suite::scenario::suites;

#[test]
fn paper_suite_carries_all_eight_experiment_ports_and_passes() {
    let suite = suites::find("paper").expect("paper suite registered");
    let scenarios = suite.scenarios();
    assert!(scenarios.len() >= 8, "got {}", scenarios.len());
    for e in 1..=8 {
        assert!(
            scenarios
                .iter()
                .any(|s| s.name().starts_with(&format!("e{e}_"))),
            "missing e{e} port"
        );
    }
    let summary = suite.run(Some(1), 4);
    assert!(
        summary.all_passed(),
        "paper verdict failures: {:?}",
        summary
            .records
            .iter()
            .filter(|r| !r.verdict.passed())
            .map(|r| (&r.scenario, &r.verdict))
            .collect::<Vec<_>>()
    );
}

#[test]
fn examples_suite_passes() {
    let summary = suites::find("examples")
        .expect("examples suite registered")
        .run(Some(1), 2);
    assert!(summary.all_passed());
    assert!(summary.runs() >= 2, "at least two example ports");
}

#[test]
fn facade_exposes_the_spec_builder() {
    // A spec built entirely through the facade path, with churn.
    let spec = ScenarioSpec::new("facade_star", TopologyFamily::Star(5), |id, _n| {
        Box::new(MaxGossip::new(id.index() as u64)) as Box<dyn Process>
    })
    .schedule(Schedule::new().at(2, ScheduledAction::Disconnect(ProcessId(4))))
    .max_rounds(12)
    .verdict(|sim, _| {
        Verdict::check(
            game_authority_suite::scenario::workload::gossip_agreed(sim, 0..4),
            "survivors agree",
        )
    });
    let record = spec.run(1);
    assert!(record.verdict.passed());
    assert_eq!(record.rounds, 12);
}

#!/usr/bin/env bash
# Times the 64-processor scenario sweep suite and records throughput
# (BENCH_scenarios.json at the repo root) so future PRs can track the
# sweep engine's runs/sec alongside the substrate snapshot.
#
# The snapshot contains:
#   suite         — the swept suite (bench64: 4 workloads × 16 seeds)
#   runs          — total scenario runs executed
#   runs_per_sec  — sweep throughput at the default worker count
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_scenarios.json}"
case "$OUT" in
    /*) ;;
    *) OUT="$PWD/$OUT" ;;
esac

cargo build --release --offline --bin scenario
./target/release/scenario bench --suite bench64 --out "$OUT"

if command -v python3 >/dev/null; then
    python3 - "$OUT" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
print(f"sweep throughput: {data['runs_per_sec']:.1f} runs/sec "
      f"({data['runs']} runs of 64-process scenarios on {data['workers']} workers)")
EOF
fi

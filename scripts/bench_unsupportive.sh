#!/usr/bin/env bash
# Charts the unsupportive-environment frontier (BENCH_unsupportive.json
# at the repo root): recovery of the BFS spanning-tree workload under
# *recurring* corruption, swept over re-fire period × intensity on
# ring/grid topologies of known diameter.
#
# The snapshot is the suite's deterministic sweep summary: per-episode
# rounds_to_stabilize percentiles checked against the certified
# diameter + 2 bound, censoring counts where the period squeezes
# episodes shut, and legal_fraction as the availability floor. Fast
# periods censor by design, so the CLI's verdict exit code 2 is
# expected and tolerated; exit code 1 (usage/IO errors) still aborts.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_unsupportive.json}"
case "$OUT" in
    /*) ;;
    *) OUT="$PWD/$OUT" ;;
esac

cargo build --release --offline --bin scenario
./target/release/scenario run --suite unsupportive --no-records \
    --workers 4 --out "$OUT" --table rounds_to_stabilize && rc=0 || rc=$?
[ "$rc" -eq 0 ] || [ "$rc" -eq 2 ] || exit "$rc"

if command -v python3 >/dev/null; then
    python3 - "$OUT" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
censored = sum(
    s["metrics"].get("censored", {}).get("mean", 0) * s["runs"]
    for s in data["scenarios"]
)
legal = [
    s["metrics"]["legal_fraction"]["mean"]
    for s in data["scenarios"]
    if "legal_fraction" in s["metrics"]
]
print(f"unsupportive frontier: {data['passed']}/{data['runs']} runs within the "
      f"certified bound ({censored:.0f} episodes censored at fast periods; "
      f"legal_fraction {min(legal):.2f}..{max(legal):.2f})")
EOF
fi

#!/usr/bin/env bash
# Runs the message-substrate microbenches and records the perf snapshot
# (BENCH_substrate.json at the repo root) that future PRs compare against.
#
# The snapshot contains, among others:
#   substrate/step_loop_bytes/n64        — zero-copy steady-state step
#   substrate/step_loop_naive_substrate/n64 — pre-rewrite baseline
# whose ratio is the substrate speedup claimed by the zero-copy PR, plus
# the scaling series:
#   substrate/step_loop_bytes/n{256,1024}   — serial large-n step loops
#   substrate/step_loop_sharded/n1024s{1,2,4} — intra-run sharded variants
# whose ratio vs the serial n1024 row is the sharding speedup (bounded by
# the host's core count; s2/s4 ≈ s1 on a single-core machine), and
#   substrate/step_loop_pooled/n{64,256}s4  — small-n sharding on an
# explicit persistent Runtime pool, recording the win the old per-round
# thread::scope spawn overhead previously ate at these populations, and
#   substrate/step_loop_events/n64          — the same n=64 step loop with
# the telemetry event sink attached (one event per delivered message);
# its ratio vs step_loop_bytes/n64 is the cost of turning events on, and
# step_loop_bytes/n64 itself is the events-off row — with the sink
# disabled telemetry must stay within noise of the pre-telemetry loop, and
#   substrate/step_loop_sparse/n{4096,65536}  — one circulating token on a
# ring under quiescence-aware stepping: per-round cost is O(active), so
# the two rows must be flat in n (an O(n)-scan scheduler shows ~16×), and
#   substrate/step_loop_sparse/grid1m         — the same token on a
# 1000×1000 grid (n = 10⁶), with the process's Linux peak RSS recorded as
#   substrate/step_loop_sparse/grid1m_peak_rss_bytes
# so CSR-topology / inbox-arena memory regressions land in the snapshot, and
#   substrate/build_grid1m/{streaming,naive}   — constructing the 10⁶-vertex
# grid via the streaming CSR builder vs the old per-vertex Vec<Vec> path
# (their ratio is the build-speed win; the gate is ≥3x), plus
#   substrate/build_ring1m/streaming           — the 10⁶-ring build, and
#   substrate/build_sim1m/{slab,boxed}         — one arena allocation vs 10⁶
# boxes for the n=10⁶ process table, and
#   substrate/step_loop_dense_active/n100000{,_replan} — all-active n=10⁵
# sharded rounds with the shard plan cached vs re-binpacked every round.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_substrate.json}"
case "$OUT" in
    /*) ;;
    *) OUT="$PWD/$OUT" ;;
esac
# cargo runs bench binaries from the package directory; hand it an
# absolute path so the snapshot lands at the repo root.
BENCH_JSON="$OUT" cargo bench --offline -p ga-bench --bench substrate_micro

echo
echo "wrote $OUT"
if command -v python3 >/dev/null; then
    python3 - "$OUT" <<'EOF'
import json, os, sys
data = json.load(open(sys.argv[1]))
ns = {b["name"]: b["ns_per_iter"] for b in data["benchmarks"]}
new = ns.get("substrate/step_loop_bytes/n64")
old = ns.get("substrate/step_loop_naive_substrate/n64")
if new and old:
    print(f"step-loop speedup vs naive substrate: {old / new:.2f}x")
serial = ns.get("substrate/step_loop_bytes/n1024")
cores = os.cpu_count() or 1
if serial:
    for s in (1, 2, 4):
        sharded = ns.get(f"substrate/step_loop_sharded/n1024s{s}")
        if sharded:
            print(f"n1024 sharded x{s} vs serial: {serial / sharded:.2f}x "
                  f"(host has {cores} core(s))")
for n in (64, 256):
    base = ns.get(f"substrate/step_loop_bytes/n{n}")
    pooled = ns.get(f"substrate/step_loop_pooled/n{n}s4")
    if base and pooled:
        print(f"n{n} pooled 4-shard vs serial: {base / pooled:.2f}x "
              f"(host has {cores} core(s))")
events = ns.get("substrate/step_loop_events/n64")
base = ns.get("substrate/step_loop_bytes/n64")
if events and base:
    print(f"n64 telemetry events on vs off: {events / base:.2f}x "
          f"({(events / base - 1) * 100:+.1f}% overhead)")
small = ns.get("substrate/step_loop_sparse/n4096")
big = ns.get("substrate/step_loop_sparse/n65536")
if small and big:
    print(f"sparse token step n65536 vs n4096: {big / small:.2f}x "
          f"(flat = O(active) holds)")
grid = ns.get("substrate/step_loop_sparse/grid1m")
rss = ns.get("substrate/step_loop_sparse/grid1m_peak_rss_bytes")
if grid:
    extra = f", peak RSS {rss / 2**20:.0f} MiB" if rss else ""
    print(f"sparse token step at n=10^6 grid: {grid:.0f} ns/round{extra}")
streaming = ns.get("substrate/build_grid1m/streaming")
naive = ns.get("substrate/build_grid1m/naive")
if streaming and naive:
    print(f"grid 10^6 build streaming vs naive: {naive / streaming:.2f}x "
          f"({streaming / 1e6:.1f} ms vs {naive / 1e6:.1f} ms; gate >= 3x)")
ring = ns.get("substrate/build_ring1m/streaming")
if ring:
    print(f"ring 10^6 build: {ring / 1e6:.1f} ms")
slab = ns.get("substrate/build_sim1m/slab")
boxed = ns.get("substrate/build_sim1m/boxed")
if slab and boxed:
    print(f"n=10^6 sim build slab vs boxed: {boxed / slab:.2f}x")
cached = ns.get("substrate/step_loop_dense_active/n100000")
replan = ns.get("substrate/step_loop_dense_active/n100000_replan")
if cached and replan:
    print(f"dense-active n=10^5 cached plan vs per-round replan: "
          f"{replan / cached:.2f}x")
EOF
fi

#!/usr/bin/env bash
# Charts the self-stabilization recovery frontier (BENCH_stabilize.json
# at the repo root) so future PRs can track stabilization-time
# percentiles and frontier pass rates alongside the other snapshots.
#
# The snapshot is the stabilize suite's deterministic sweep summary: one
# entry per loss × corruption-intensity × n grid point (plus the three
# historical ports) with rounds_to_stabilize percentiles and censoring
# counts. The harsh frontier points censor by design, so the CLI's
# verdict exit code 2 is expected and tolerated; exit code 1
# (usage/IO errors) still aborts.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_stabilize.json}"
case "$OUT" in
    /*) ;;
    *) OUT="$PWD/$OUT" ;;
esac

cargo build --release --offline --bin scenario
./target/release/scenario run --suite stabilize --no-records \
    --workers 4 --out "$OUT" --table rounds_to_stabilize && rc=0 || rc=$?
[ "$rc" -eq 0 ] || [ "$rc" -eq 2 ] || exit "$rc"

if command -v python3 >/dev/null; then
    python3 - "$OUT" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
censored = sum(
    s["metrics"].get("censored", {}).get("mean", 0) * s["runs"]
    for s in data["scenarios"]
)
print(f"stabilize frontier: {data['passed']}/{data['runs']} runs stabilized "
      f"({censored:.0f} censored at the harsh grid points)")
EOF
fi

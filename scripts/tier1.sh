#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#   build (release) + tests + clippy (deny warnings) + rustfmt check
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test"
cargo test -q --workspace --offline

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "tier1: OK"

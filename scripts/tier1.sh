#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#   build (release) + tests + clippy (deny warnings) + rustfmt check
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test"
cargo test -q --workspace --offline

echo "==> scenario smoke suite (verdicts + cross-process summary determinism)"
./target/release/scenario run --suite smoke --workers 4 > target/scenario_smoke_a.json
./target/release/scenario run --suite smoke --workers 1 > target/scenario_smoke_b.json
cmp target/scenario_smoke_a.json target/scenario_smoke_b.json

echo "==> scenario smoke suite (serial vs sharded step byte-identity)"
./target/release/scenario run --suite smoke --workers 4 --shards 1 > target/scenario_smoke_s1.json
./target/release/scenario run --suite smoke --workers 4 --shards 4 > target/scenario_smoke_s4.json
cmp target/scenario_smoke_s1.json target/scenario_smoke_s4.json
cmp target/scenario_smoke_a.json target/scenario_smoke_s1.json

echo "==> scenario authority suite (§3.3 plays; pooled workers 4/shards 4 vs serial 1/1 byte-identity)"
# --workers sizes the one persistent runtime pool: the serial side runs
# inline on the caller, the pooled side nests sweep workers and shard
# batches in the same 4-thread pool — outputs must be byte-identical.
./target/release/scenario run --suite authority --seeds 1 --workers 1 --shards 1 > target/scenario_auth_a.json
./target/release/scenario run --suite authority --seeds 1 --workers 4 --shards 4 > target/scenario_auth_b.json
cmp target/scenario_auth_a.json target/scenario_auth_b.json

echo "==> scenario stabilize suite (recovery frontier; pooled workers 4/shards 4 vs serial 1/1 byte-identity)"
# The harsh (lossy, high-intensity) frontier points censor by design and
# fail their verdicts, so the CLI exits 2 — that charts the frontier, it
# does not fail the gate. Exit code 1 (usage/IO errors) still aborts, and
# the byte-identity cmps below are the actual determinism gate: both the
# summary JSON and the full telemetry event stream (deliveries, drops,
# corruption draws, scrambles, legality flips) must not depend on worker
# count, shard count or pool size.
run_stabilize() {
    ./target/release/scenario run --suite stabilize --no-records \
        --workers "$1" --shards "$2" --out "$3" --events "$4" > /dev/null && rc=0 || rc=$?
    [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ] || exit "$rc"
}
run_stabilize 1 1 target/scenario_stab_a.json target/scenario_stab_a_events.jsonl
run_stabilize 4 4 target/scenario_stab_b.json target/scenario_stab_b_events.jsonl
cmp target/scenario_stab_a.json target/scenario_stab_b.json
cmp target/scenario_stab_a_events.jsonl target/scenario_stab_b_events.jsonl

echo "==> scenario unsupportive suite (recurring corruption; pooled workers 4/shards 4 vs serial 1/1 byte-identity)"
# Recurring corruption re-arms its schedule entry at every burst from
# inside worker threads; fast-period frontier points censor by design
# (exit 2). The cmps pin the lazy re-arm to the same determinism
# contract as everything else: summary JSON and event JSONL must not
# depend on worker count, shard count or pool size.
run_unsupportive() {
    ./target/release/scenario run --suite unsupportive --no-records \
        --workers "$1" --shards "$2" --out "$3" --events "$4" > /dev/null && rc=0 || rc=$?
    [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ] || exit "$rc"
}
run_unsupportive 1 1 target/scenario_unsup_a.json target/scenario_unsup_a_events.jsonl
run_unsupportive 4 4 target/scenario_unsup_b.json target/scenario_unsup_b_events.jsonl
cmp target/scenario_unsup_a.json target/scenario_unsup_b.json
cmp target/scenario_unsup_a_events.jsonl target/scenario_unsup_b_events.jsonl

echo "==> sparse-vs-dense adjacency byte-identity (smoke + unsupportive)"
# The CSR neighbor lists and the dense bitmask plane must be perfectly
# interchangeable: forcing every topology down each path has to produce
# identical summaries — and, for the event-enabled unsupportive run,
# identical event JSONL (corruption targeting uses degree queries, so a
# repr divergence would surface here first).
./target/release/scenario run --suite smoke --workers 4 --repr dense > target/scenario_smoke_dense.json
./target/release/scenario run --suite smoke --workers 4 --repr sparse > target/scenario_smoke_sparse.json
cmp target/scenario_smoke_dense.json target/scenario_smoke_sparse.json
cmp target/scenario_smoke_a.json target/scenario_smoke_dense.json
run_unsupportive_repr() {
    ./target/release/scenario run --suite unsupportive --no-records --repr "$1" \
        --workers 4 --shards 4 --out "$2" --events "$3" > /dev/null && rc=0 || rc=$?
    [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ] || exit "$rc"
}
run_unsupportive_repr dense target/scenario_unsup_dense.json target/scenario_unsup_dense_events.jsonl
run_unsupportive_repr sparse target/scenario_unsup_sparse.json target/scenario_unsup_sparse_events.jsonl
cmp target/scenario_unsup_dense.json target/scenario_unsup_sparse.json
cmp target/scenario_unsup_dense_events.jsonl target/scenario_unsup_sparse_events.jsonl
cmp target/scenario_unsup_a.json target/scenario_unsup_dense.json

echo "==> large-n sparse smoke (quiescence-aware stepping at n=65536)"
# A 65536-ring and a 64x64 grid relay wavefront: viable only because a
# round costs O(active), so a hang or an O(n)-scan regression blows the
# timeout rather than silently slowing every future gate run.
timeout 120 ./target/release/scenario run --suite sparse --workers 2 > target/scenario_sparse.json

echo "==> grid1m build smoke (streaming CSR constructs n=10^6 inside the timeout)"
# Constructing the 1000x1000 grid topology must be fast: the streaming
# CSR builder does it in O(1) allocations, so a reintroduced per-vertex
# Vec intermediate (or an accidental O(n^2) pass) blows this bound long
# before it blows a bench snapshot.
timeout 60 cargo test -q -p ga-simnet --release --offline \
    --test sparse grid1m_builds_fast -- --exact

echo "==> cached vs uncached shard-plan byte-identity (smoke + unsupportive)"
# The shard-plan cache reuses the previous round's bin-pack whenever the
# active set and topology are unchanged. The plan only decides which
# thread steps whom, so disabling the cache must reproduce the exact
# summary JSON — and, for the event-enabled unsupportive run (whose churn
# and corruption bursts invalidate the cache mid-run), the exact event
# JSONL.
./target/release/scenario run --suite smoke --workers 4 --shards 4 --no-plan-cache \
    > target/scenario_smoke_noplancache.json
cmp target/scenario_smoke_s4.json target/scenario_smoke_noplancache.json
run_unsupportive_nocache() {
    ./target/release/scenario run --suite unsupportive --no-records --no-plan-cache \
        --workers 4 --shards 4 --out "$1" --events "$2" > /dev/null && rc=0 || rc=$?
    [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ] || exit "$rc"
}
run_unsupportive_nocache target/scenario_unsup_nocache.json target/scenario_unsup_nocache_events.jsonl
cmp target/scenario_unsup_b.json target/scenario_unsup_nocache.json
cmp target/scenario_unsup_b_events.jsonl target/scenario_unsup_nocache_events.jsonl

echo "==> scenario trace smoke (event JSONL -> Chrome trace-event JSON)"
./target/release/scenario trace target/scenario_stab_a_events.jsonl \
    --out target/scenario_stab_trace.json
python3 - <<'EOF'
import json
with open("target/scenario_stab_trace.json") as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace must contain events"
assert any(e.get("ph") == "X" for e in events), "round spans present"
assert trace["displayTimeUnit"] == "ms"
print(f"trace OK ({len(events)} trace events)")
EOF

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "tier1: OK"

//! Vendored minimal subset of [`parking_lot`](https://docs.rs/parking_lot):
//! a [`Mutex`] whose `lock` does not return a poisoning `Result`. Backed by
//! `std::sync::Mutex`; poisoning is absorbed (the data is returned anyway),
//! matching parking_lot's no-poisoning semantics.

use std::sync::TryLockError;

/// A mutual-exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}

//! Vendored minimal subset of the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of the API it actually uses: [`Bytes`], a cheaply
//! cloneable, immutable, reference-counted byte buffer. Cloning a `Bytes`
//! bumps a refcount; it never copies the payload. This is the property the
//! simulator's zero-copy broadcast fan-out is built on.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// `clone` is O(1) (an atomic refcount increment) and all clones share one
/// heap allocation — `as_ptr` returns the same address for every clone.
/// Backed by `Arc<Vec<u8>>` so `From<Vec<u8>>` *moves* the buffer (no
/// payload copy), matching upstream `bytes` semantics.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies `data` into a fresh buffer (one allocation).
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Creates a buffer from a static slice.
    ///
    /// The vendored implementation copies once; clones still share.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The buffer contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.as_slice(), f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    /// Moves the vector behind the refcount — no payload copy.
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::new(v) }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes {
            data: Arc::new(v.into_vec()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Bytes {
        Bytes::copy_from_slice(&v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr(), "clone is refcounted, not copied");
        assert_eq!(a, b);
    }

    #[test]
    fn from_vec_is_a_move() {
        let v = vec![5u8; 64];
        let p = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ptr(), p, "the Vec's buffer is moved, not copied");
    }

    #[test]
    fn equality_across_forms() {
        let b = Bytes::from(vec![9u8, 8]);
        assert_eq!(b, vec![9u8, 8]);
        assert_eq!(b, [9u8, 8]);
        assert_eq!(b.as_slice(), &[9u8, 8]);
    }

    #[test]
    fn empty_default() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().len(), 0);
    }
}

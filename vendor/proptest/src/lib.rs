//! Vendored minimal subset of [`proptest`](https://docs.rs/proptest).
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the API its property tests use: the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`], `any::<T>()`,
//! range strategies, tuples of strategies, [`collection::vec`],
//! [`sample::subsequence`] and [`strategy::Strategy::prop_map`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (no persisted failure files) and there is **no
//! shrinking** — a failing case reports its index so it can be replayed.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of random test values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws one value uniformly over the domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut StdRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy for `any::<T>()`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    // Tuples of strategies generate component-wise, left to right — what
    // upstream calls the tuple strategy composition.
    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A size specification: an exact count or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        pub(crate) fn pick(&self, rng: &mut StdRng) -> usize {
            if self.lo + 1 >= self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::collection::SizeRange;
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy drawing an order-preserving random subsequence of `values`
    /// whose length falls in `size`.
    pub fn subsequence<T: Clone>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            values,
            size: size.into(),
        }
    }

    /// Strategy returned by [`subsequence`].
    #[derive(Debug, Clone)]
    pub struct Subsequence<T> {
        values: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut StdRng) -> Vec<T> {
            let k = self.size.pick(rng).min(self.values.len());
            // Reservoir-free selection: mark k distinct indices, keep order.
            let mut picked = vec![false; self.values.len()];
            let mut chosen = 0;
            while chosen < k {
                let i = rng.gen_range(0..self.values.len());
                if !picked[i] {
                    picked[i] = true;
                    chosen += 1;
                }
            }
            self.values
                .iter()
                .zip(&picked)
                .filter(|(_, &p)| p)
                .map(|(v, _)| v.clone())
                .collect()
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// FNV-1a over a test identifier, for stable per-test seeds.
    pub fn test_seed(ident: &str, case: u32) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in ident.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let ident = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut proptest_rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::
                    seed_from_u64($crate::__rt::test_seed(ident, case));
                $(let $arg = $crate::strategy::Strategy::generate(
                    &($strat), &mut proptest_rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("proptest {ident} failed at case {case}: {message}");
                }
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

/// Property-test assertion: on failure the current case fails with the
/// stringified condition (or a formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                format!("assertion failed: {:?} == {:?}", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!("assertion failed: {:?} != {:?}", l, r));
        }
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..8, v in any::<u8>()) {
            prop_assert!((3..8).contains(&n));
            let _ = v;
        }

        #[test]
        fn vec_strategy_respects_size(xs in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5, "len={}", xs.len());
        }

        #[test]
        fn subsequence_preserves_order(
            xs in crate::sample::subsequence(vec![0usize, 1, 2, 3, 4], 1..5)
        ) {
            prop_assert!(xs.windows(2).all(|w| w[0] < w[1]));
            prop_assume!(!xs.is_empty());
            prop_assert!(xs[0] <= 4);
        }

        #[test]
        fn prop_map_applies(d in (0u64..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(d % 2, 0);
            prop_assert_ne!(d, 19);
        }
    }

    #[test]
    fn cases_are_reproducible() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(any::<u64>(), 0..6);
        let mut a = <crate::__rt::StdRng as crate::__rt::SeedableRng>::seed_from_u64(
            crate::__rt::test_seed("x", 0),
        );
        let mut b = <crate::__rt::StdRng as crate::__rt::SeedableRng>::seed_from_u64(
            crate::__rt::test_seed("x", 0),
        );
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}

//! Vendored minimal subset of the [`rand`](https://docs.rs/rand) crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the API it uses: [`RngCore`], [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`]. The generator is
//! xoshiro256** — high quality and fast, but **not** the upstream `StdRng`
//! stream; all determinism guarantees in this workspace are relative to
//! this vendored generator.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: distributions::Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        distributions::unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// The seed material type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from full seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64` (SplitMix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Deterministic from its 32-byte seed; not the upstream `StdRng`
    /// stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            let mut rng = StdRng { s };
            // Warm-up: xoshiro's first raw output is a function of s[1]
            // alone, so without mixing, seeds differing only in other words
            // would start with identical draws. A few discard steps spread
            // every seed word into the visible stream.
            for _ in 0..4 {
                rng.next_u64();
            }
            rng
        }
    }
}

/// Sampling distributions and range support.
pub mod distributions {
    use super::RngCore;

    /// A uniform value in `[0, 1)`.
    pub fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Types samplable uniformly over their whole domain (`rng.gen()`).
    pub trait Standard: Sized {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Standard for $t {
                fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Standard for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for f64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    /// Ranges usable with `rng.gen_range`.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_sample_range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for core::ops::Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + unit_f64(rng) * (self.end - self.start)
        }
    }
}

/// Slice utilities.
pub mod seq {
    use super::RngCore;

    /// Random shuffling and selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

/// Common imports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<u32>>());
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

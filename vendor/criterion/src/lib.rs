//! Vendored minimal subset of [`criterion`](https://docs.rs/criterion).
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the API its benches use: [`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`Throughput`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Differences from upstream: measurement is a simple
//! min-of-batches timer (no statistics engine, no HTML reports). When the
//! `BENCH_JSON` environment variable names a file, every benchmark result
//! in the process is written to it as one JSON document on exit
//! (overwriting any previous contents) — the workspace's perf-trajectory
//! snapshot format.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark path, e.g. `substrate/broadcast_fanout_bytes`.
    pub name: String,
    /// Best observed nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Declared throughput, if any.
    pub throughput: Option<Throughput>,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, optionally `function/parameter`-shaped.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Types accepted as benchmark identifiers.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    ns_per_iter: f64,
    /// Soft target for total measurement time per benchmark.
    budget: Duration,
}

impl Bencher {
    /// Measures `routine`, recording the best observed time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate on a single call.
        let start = Instant::now();
        std::hint::black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));

        if first >= self.budget {
            self.ns_per_iter = first.as_nanos() as f64;
            return;
        }
        let per_batch = (self.budget.as_nanos() / 3 / first.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(routine());
            }
            let total = start.elapsed().as_nanos() as f64;
            best = best.min(total / per_batch as f64);
        }
        self.ns_per_iter = best;
    }
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            budget: Duration::from_millis(60),
        }
    }
}

impl Criterion {
    /// Upstream-compat no-op (CLI args are ignored).
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Criterion {
        let name = id.into_id();
        run_one(name, None, self.budget, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let budget = self.budget;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            budget,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    budget: Duration,
}

impl BenchmarkGroup<'_> {
    /// Upstream-compat: scales the per-benchmark time budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Fewer samples upstream means "each iteration is slow"; keep the
        // budget proportional so heavy benches stay quick here too.
        self.budget = Duration::from_millis((n as u64).clamp(10, 100));
        self
    }

    /// Declares the throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(name, self.throughput, self.budget, f);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: String,
    throughput: Option<Throughput>,
    budget: Duration,
    mut f: F,
) {
    let mut bencher = Bencher {
        ns_per_iter: 0.0,
        budget,
    };
    f(&mut bencher);
    let result = BenchResult {
        name,
        ns_per_iter: bencher.ns_per_iter,
        throughput,
    };
    report_line(&result);
    RESULTS.lock().expect("results lock").push(result);
}

fn report_line(r: &BenchResult) {
    let rate = match r.throughput {
        Some(Throughput::Bytes(b)) if r.ns_per_iter > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                b as f64 / r.ns_per_iter * 1e9 / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(e)) if r.ns_per_iter > 0.0 => {
            format!("  ({:.0} elem/s)", e as f64 / r.ns_per_iter * 1e9)
        }
        _ => String::new(),
    };
    println!("{:<56} {:>14.1} ns/iter{rate}", r.name, r.ns_per_iter);
}

/// Records an arbitrary scalar measurement (peak RSS, a count, ...) as a
/// row in the report alongside the timing rows. The snapshot format has
/// one numeric column (`ns_per_iter`), so name the metric with its unit —
/// e.g. `substrate/grid_walk_1m/peak_rss_bytes`.
pub fn record_metric(name: impl Into<String>, value: f64) {
    let result = BenchResult {
        name: name.into(),
        ns_per_iter: value,
        throughput: None,
    };
    report_line(&result);
    RESULTS.lock().expect("results lock").push(result);
}

/// Writes all recorded results as JSON to the file named by the
/// `BENCH_JSON` environment variable, if set. Called by
/// [`criterion_main!`] after all groups ran.
pub fn write_json_report() {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().expect("results lock");
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}}}{sep}\n",
            r.name.replace('"', "'"),
            r.ns_per_iter
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("BENCH_JSON: cannot write {path}: {e}");
    }
}

/// Read access to the recorded results (used by tests).
pub fn recorded_results() -> Vec<BenchResult> {
    RESULTS.lock().expect("results lock").clone()
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups and emitting the JSON report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_a_positive_time() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(10);
        g.throughput(Throughput::Bytes(64));
        g.bench_function("spin", |b| {
            b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()))
        });
        g.finish();
        let all = recorded_results();
        let mine = all.iter().find(|r| r.name == "t/spin").expect("recorded");
        assert!(mine.ns_per_iter > 0.0);
    }

    #[test]
    fn metrics_are_recorded_verbatim() {
        record_metric("t/metric_bytes", 123.5);
        let all = recorded_results();
        let mine = all
            .iter()
            .find(|r| r.name == "t/metric_bytes")
            .expect("recorded");
        assert_eq!(mine.ns_per_iter, 123.5);
        assert!(mine.throughput.is_none());
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).into_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("n4_f1").into_id(), "n4_f1");
    }
}
